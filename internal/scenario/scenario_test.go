package scenario

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"horse/internal/addr"
	"horse/internal/controller"
	"horse/internal/dataplane"
	"horse/internal/flowsim"
	"horse/internal/header"
	"horse/internal/hybrid"
	"horse/internal/netgraph"
	"horse/internal/packetsim"
	"horse/internal/simtime"
	"horse/internal/stats"
	"horse/internal/traffic"
)

func cbr(src, dst netgraph.NodeID, start simtime.Time, sizeBits, rateBps float64, sport uint16) traffic.Demand {
	return traffic.Demand{
		Key: addr.FlowKeyBetween(src, dst, header.ProtoUDP, sport, 80),
		Src: src, Dst: dst, Start: start,
		SizeBits: sizeBits, RateBps: rateBps,
	}
}

func TestTimelineBuilderOrdersEvents(t *testing.T) {
	tl := New().
		LinkUp(2*simtime.Time(simtime.Second), 1).
		LinkDown(simtime.Time(simtime.Second), 1).
		ControllerOutage(simtime.Time(simtime.Second), 3*simtime.Time(simtime.Second))
	evs := tl.Events()
	if len(evs) != 4 {
		t.Fatalf("events = %d", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("events out of order: %v after %v", evs[i].At, evs[i-1].At)
		}
	}
	// Same-instant ties keep insertion order: LinkDown was added before
	// the ControllerDetach at the same instant.
	if evs[0].Kind != LinkDown || evs[1].Kind != ControllerDetach {
		t.Errorf("tie-break broken: got %v, %v", evs[0].Kind, evs[1].Kind)
	}
	if tl.Failures() != 2 {
		t.Errorf("failures = %d, want 2 (link down + detach)", tl.Failures())
	}
	if first, ok := tl.FirstFailure(); !ok || first != simtime.Time(simtime.Second) {
		t.Errorf("first failure = %v, %v", first, ok)
	}
}

func TestRandomLinkFailuresReproducible(t *testing.T) {
	topo := netgraph.LeafSpine(4, 2, 2, netgraph.Gig, netgraph.TenGig)
	cfg := FailureConfig{
		Seed: 42, MTBF: simtime.Second, Recovery: 100 * simtime.Millisecond,
		Horizon: simtime.Time(5 * simtime.Second), CoreOnly: true,
	}
	a, b := RandomLinkFailures(topo, cfg).Events(), RandomLinkFailures(topo, cfg).Events()
	if len(a) == 0 {
		t.Fatal("no failures generated")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different event counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].At != b[i].At || a[i].Kind != b[i].Kind || a[i].Link != b[i].Link {
			t.Fatalf("same seed diverged at event %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Degenerate configs yield empty timelines instead of hanging or
	// exploding (a negative recovery would walk time backwards forever).
	for _, bad := range []FailureConfig{
		{Seed: 1, MTBF: 0, Recovery: cfg.Recovery, Horizon: cfg.Horizon},
		{Seed: 1, MTBF: cfg.MTBF, Recovery: cfg.Recovery, Horizon: 0},
		{Seed: 1, MTBF: cfg.MTBF, Recovery: -simtime.Second, Horizon: cfg.Horizon},
	} {
		if evs := RandomLinkFailures(topo, bad).Events(); len(evs) != 0 {
			t.Errorf("degenerate config %+v produced %d events", bad, len(evs))
		}
	}

	cfg.Seed = 43
	c := RandomLinkFailures(topo, cfg).Events()
	same := len(c) == len(a)
	if same {
		for i := range a {
			if a[i].At != c[i].At {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical timelines")
	}
	// Only core links fail, each down paired with an up one Recovery later.
	downAt := make(map[netgraph.LinkID]simtime.Time)
	for _, e := range a {
		switch e.Kind {
		case LinkDown:
			if e.At >= cfg.Horizon {
				t.Errorf("failure at %v beyond horizon", e.At)
			}
			l := topo.Link(e.Link)
			if topo.Node(l.A).Kind != netgraph.KindSwitch || topo.Node(l.B).Kind != netgraph.KindSwitch {
				t.Errorf("CoreOnly failed a host link %d", e.Link)
			}
			downAt[e.Link] = e.At
		case LinkUp:
			if want := downAt[e.Link].Add(cfg.Recovery); e.At != want {
				t.Errorf("link %d recovered at %v, want %v", e.Link, e.At, want)
			}
		}
	}
}

// outageScenario is the scripted single-link failure every engine replays:
// a 4-switch ring, proactive MAC forwarding, three CBR flows. The direct
// s0–s1 link dies at 1s (mid-flight for the affected flows) and recovers
// at 3s.
func outageScenario() (*netgraph.Topology, traffic.Trace, *Timeline) {
	topo := netgraph.Ring(4, netgraph.Gig, netgraph.TenGig)
	h := func(n string) netgraph.NodeID { return topo.MustLookup(n) }
	tr := traffic.Trace{
		cbr(h("h0"), h("h1"), 0, 1e8, 5e7, 30000), // crosses the dying link
		cbr(h("h1"), h("h0"), 0, 1e8, 5e7, 30001), // reverse direction
		cbr(h("h2"), h("h3"), 0, 1e8, 5e7, 30002), // unaffected
	}
	s0, s1 := h("s0"), h("s1")
	direct := topo.LinkAt(s0, topo.PortToward(s0, s1)).ID
	tl := New().LinkOutage(simtime.Time(simtime.Second), simtime.Time(3*simtime.Second), direct)
	return topo, tr, tl
}

const outageWindow = simtime.Time(5 * simtime.Second)

func outageController() flowsim.Controller {
	return controller.NewChain(&controller.ProactiveMAC{})
}

// TestScriptedOutageAcceptance is the PR's acceptance contract: one
// scripted failure at t with recovery at t' shows packet-level loss > 0,
// a flow-level stall, and the hybrid at 100% packet share matching the
// standalone packet engine record-for-record.
func TestScriptedOutageAcceptance(t *testing.T) {
	// Flow level: the affected flows stall while the controller
	// reconverges, so they finish late (pure transfer time is 2s).
	topoF, trF, tlF := outageScenario()
	simF := flowsim.New(flowsim.Config{
		Topology: topoF, Controller: outageController(), Miss: dataplane.MissController,
		ControlLatency: simtime.Millisecond,
	})
	tlF.Apply(simF, simtime.Never)
	simF.Load(trF)
	colF := mustRun(simF, outageWindow)
	recsF := colF.Flows()
	if len(recsF) != 3 {
		t.Fatalf("flow records = %d", len(recsF))
	}
	for _, r := range recsF {
		if !r.Completed {
			t.Fatalf("flow %d: %s", r.ID, r.Outcome)
		}
	}
	stallF := false
	for _, r := range recsF {
		if r.FCT() > 2*simtime.Second+simtime.Millisecond {
			stallF = true
		}
	}
	if !stallF {
		t.Error("no flow-level stall: every FCT within 1ms of the undisturbed 2s")
	}
	if colF.PathChanges == 0 {
		t.Error("flow engine never rerouted")
	}
	if out := Evaluate(tlF, colF, nil); out.RerouteLatency <= 0 {
		t.Errorf("reroute latency = %v, want > 0 (controller round trip)", out.RerouteLatency)
	}

	// Packet level: packets queued, in flight, or offered during the
	// outage are lost and counted.
	topoP, trP, tlP := outageScenario()
	simP := packetsim.New(packetsim.Config{
		Topology: topoP, Controller: outageController(), Miss: dataplane.MissController,
		ControlLatency: simtime.Millisecond,
	})
	tlP.Apply(simP, simtime.Never)
	simP.Load(trP)
	colP := mustRun(simP, outageWindow)
	if colP.PacketsLost == 0 {
		t.Error("packet engine lost no packets across a link failure")
	}
	for _, r := range colP.Flows() {
		if !r.Completed {
			t.Fatalf("packet flow %d: %s", r.ID, r.Outcome)
		}
	}

	// Hybrid at 100% packet share: identical records to the standalone
	// packet engine — same flows, outcomes, end times, bytes, losses.
	topoH, trH, tlH := outageScenario()
	hyb := hybrid.New(hybrid.Config{
		Topology: topoH, Controller: outageController(), Miss: dataplane.MissController,
		ControlLatency: simtime.Millisecond,
		PacketLevel:    hybrid.Fraction(1),
	})
	tlH.Apply(hyb, simtime.Never)
	hyb.Load(trH)
	mustRun(hyb, outageWindow)
	recsH := hyb.Records()
	recsP := colP.Flows()
	if len(recsH) != len(recsP) {
		t.Fatalf("hybrid %d records vs standalone %d", len(recsH), len(recsP))
	}
	for i, rp := range recsP {
		rh := recsH[i]
		if rh.ID != rp.ID || rh.Completed != rp.Completed || rh.Outcome != rp.Outcome ||
			rh.End != rp.End || rh.SentBits != rp.SentBits {
			t.Errorf("record %d diverged: hybrid %+v vs standalone %+v", i, rh, rp)
		}
	}
	if got, want := hyb.PacketCollector().PacketsLost, colP.PacketsLost; got != want {
		t.Errorf("hybrid lost %d packets, standalone %d", got, want)
	}
}

// TestGoldenCrossEngineFailureParity is the cross-engine contract for the
// scripted single-link failure: flowsim and packetsim arrive at the same
// reroute decision (identical post-event forwarding walk) and the same
// recovered-flow set.
func TestGoldenCrossEngineFailureParity(t *testing.T) {
	runFlow := func() (*stats.Collector, *flowsim.Simulator, traffic.Trace) {
		topo, tr, tl := outageScenario()
		sim := flowsim.New(flowsim.Config{
			Topology: topo, Controller: outageController(), Miss: dataplane.MissController,
			ControlLatency: simtime.Millisecond,
		})
		tl.Apply(sim, simtime.Never)
		sim.Load(tr)
		return mustRun(sim, outageWindow), sim, tr
	}
	runPkt := func() (*stats.Collector, *packetsim.Simulator, traffic.Trace) {
		topo, tr, tl := outageScenario()
		sim := packetsim.New(packetsim.Config{
			Topology: topo, Controller: outageController(), Miss: dataplane.MissController,
			ControlLatency: simtime.Millisecond,
		})
		tl.Apply(sim, simtime.Never)
		sim.Load(tr)
		return mustRun(sim, outageWindow), sim, tr
	}
	colF, simF, trF := runFlow()
	colP, simP, _ := runPkt()

	// Recovered-flow set: both engines number flows in trace order.
	recF, recP := colF.Flows(), colP.Flows()
	completed := func(rs []stats.FlowRecord) map[int64]bool {
		m := make(map[int64]bool)
		for _, r := range rs {
			if r.Completed {
				m[r.ID] = true
			}
		}
		return m
	}
	cF, cP := completed(recF), completed(recP)
	if len(cF) != len(cP) {
		t.Fatalf("recovered sets differ: flow=%d packet=%d", len(cF), len(cP))
	}
	for id := range cF {
		if !cP[id] {
			t.Errorf("flow %d recovered at flow level but not at packet level", id)
		}
	}

	// Reroute decision: after the run (link recovered, controller
	// reconverged) both data planes forward every demand over the same
	// hop sequence.
	for _, d := range trF {
		resF := simF.Network().Walk(d.Key, d.Src, d.Dst)
		resP := simP.Network().Walk(d.Key, d.Src, d.Dst)
		if resF.Terminal != dataplane.Delivered || resP.Terminal != dataplane.Delivered {
			t.Fatalf("post-run walk not delivered: flow=%v packet=%v", resF.Terminal, resP.Terminal)
		}
		if len(resF.Hops) != len(resP.Hops) {
			t.Fatalf("hop counts differ for %v: %d vs %d", d.Key, len(resF.Hops), len(resP.Hops))
		}
		for i := range resF.Hops {
			hf, hp := resF.Hops[i], resP.Hops[i]
			if hf.Switch != hp.Switch || hf.OutPort != hp.OutPort {
				t.Errorf("hop %d differs for %v: flow goes %d:%d, packet goes %d:%d",
					i, d.Key, hf.Switch, hf.OutPort, hp.Switch, hp.OutPort)
			}
		}
	}
}

// TestScenarioReplayByteDeterministic is the replay property: the same
// scenario produces byte-identical flow and link CSVs on repeat runs and
// across the heap/calendar event-queue implementations. (The -parallel
// half of the property lives in experiments: TestE8ParallelDeterminism.)
func TestScenarioReplayByteDeterministic(t *testing.T) {
	render := func(calendar bool) (string, string) {
		topo := netgraph.LeafSpine(4, 2, 2, netgraph.Gig, netgraph.TenGig)
		g := traffic.NewGenerator(91)
		tr := g.PoissonArrivals(traffic.PoissonConfig{
			Hosts: topo.Hosts(), Lambda: 150, Horizon: 2 * simtime.Second,
			Sizes: traffic.Pareto{XMin: 1e5, Alpha: 1.5}, TCPFraction: 0.5, CBRRateBps: 1e7,
		})
		sim := flowsim.New(flowsim.Config{
			Topology: topo, Controller: controller.NewChain(&controller.ECMPLoadBalancer{}),
			Miss: dataplane.MissController, StatsEvery: 100 * simtime.Millisecond,
			UseCalendarQueue: calendar,
		})
		RandomLinkFailures(topo, FailureConfig{
			Seed: 7, MTBF: simtime.Second, Recovery: 200 * simtime.Millisecond,
			Horizon: simtime.Time(2 * simtime.Second), CoreOnly: true,
		}).Apply(sim, simtime.Never)
		sim.Load(tr)
		col := mustRun(sim, simtime.Time(10*simtime.Minute))
		var flows, links bytes.Buffer
		if err := col.WriteFlowsCSV(&flows); err != nil {
			t.Fatal(err)
		}
		if err := col.WriteLinkSeriesCSV(&links); err != nil {
			t.Fatal(err)
		}
		return flows.String(), links.String()
	}
	f1, l1 := render(false)
	f2, l2 := render(false)
	f3, l3 := render(true)
	if f1 != f2 || l1 != l2 {
		t.Fatal("repeat replay diverged with the heap queue")
	}
	if f1 != f3 || l1 != l3 {
		t.Fatal("heap and calendar queues diverged on the same scenario")
	}
	if len(f1) == 0 || f1 == "id,arrival_s,end_s,size_bits,sent_bits,outcome,fct_s,path_len,punts\n" {
		t.Fatal("replay produced no flow records")
	}
}

// TestSwitchCrashAcrossEngines: a spine crash wipes the switch's tables
// and drops its links; traffic reroutes via the surviving spine and the
// restarted switch is re-programmed by the controller.
func TestSwitchCrashAcrossEngines(t *testing.T) {
	topo := netgraph.LeafSpine(2, 2, 2, netgraph.Gig, netgraph.TenGig)
	h0, h2 := topo.MustLookup("h0"), topo.MustLookup("h2")
	spine0 := topo.MustLookup("spine0")
	tr := traffic.Trace{cbr(h0, h2, 0, 1.5e8, 5e7, 31000)} // 3s transfer
	tl := New().SwitchOutage(simtime.Time(simtime.Second), simtime.Time(2*simtime.Second), spine0)

	sim := flowsim.New(flowsim.Config{
		Topology: topo, Controller: outageController(), Miss: dataplane.MissController,
		ControlLatency: simtime.Millisecond,
	})
	tl.Apply(sim, simtime.Never)
	sim.Load(tr)
	col := mustRun(sim, simtime.Time(simtime.Minute))
	r := col.Flows()[0]
	if !r.Completed {
		t.Fatalf("flow outcome = %s", r.Outcome)
	}
	// The restarted switch was wiped and then re-programmed on recovery.
	entries := 0
	for _, tab := range sim.Network().Switches[spine0].Tables {
		entries += tab.Len()
	}
	if entries == 0 {
		t.Error("restarted switch was never re-programmed")
	}

	// A switch that stays crashed cannot apply controller messages: the
	// crash-triggered resync must not program its wiped tables.
	topoD := netgraph.LeafSpine(2, 2, 2, netgraph.Gig, netgraph.TenGig)
	simD := flowsim.New(flowsim.Config{
		Topology: topoD, Controller: outageController(), Miss: dataplane.MissController,
		ControlLatency: simtime.Millisecond,
	})
	spine0D := topoD.MustLookup("spine0")
	New().SwitchFail(simtime.Time(simtime.Second), spine0D).Apply(simD, simtime.Never)
	simD.Load(traffic.Trace{cbr(topoD.MustLookup("h0"), topoD.MustLookup("h2"), 0, 1.5e8, 5e7, 31001)})
	mustRun(simD, simtime.Time(simtime.Minute))
	dead := 0
	for _, tab := range simD.Network().Switches[spine0D].Tables {
		dead += tab.Len()
	}
	if dead != 0 {
		t.Errorf("crashed switch holds %d rules; messages applied to a dead switch", dead)
	}

	// Packet engine: parked punts and queued packets at the crashed
	// switch are lost, and the flow still completes.
	topoP := netgraph.LeafSpine(2, 2, 2, netgraph.Gig, netgraph.TenGig)
	simP := packetsim.New(packetsim.Config{
		Topology: topoP, Controller: outageController(), Miss: dataplane.MissController,
		ControlLatency: simtime.Millisecond,
	})
	New().SwitchOutage(simtime.Time(simtime.Second), simtime.Time(2*simtime.Second),
		topoP.MustLookup("spine0")).Apply(simP, simtime.Never)
	simP.Load(traffic.Trace{cbr(topoP.MustLookup("h0"), topoP.MustLookup("h2"), 0, 1.5e8, 5e7, 31000)})
	colP := mustRun(simP, simtime.Time(simtime.Minute))
	if rp := colP.Flows()[0]; !rp.Completed {
		t.Fatalf("packet flow outcome = %s", rp.Outcome)
	}
}

// TestReactiveMACSurvivesSwitchRestart: a restarted switch loses its
// table-0 goto default too; ReactiveMAC must re-install the defaults on
// PortStatus so post-restart misses still punt up to the reactive rules —
// and a flow whose reconvergence FlowMods died with the crash must
// re-announce itself instead of waiting forever behind the PacketIn
// dedup.
func TestReactiveMACSurvivesSwitchRestart(t *testing.T) {
	// Case 1: flow active across the outage of the only spine.
	topo := netgraph.LeafSpine(2, 1, 2, netgraph.Gig, netgraph.TenGig)
	spine := topo.MustLookup("spine0")
	sim := flowsim.New(flowsim.Config{
		Topology: topo, Controller: controller.NewChain(&controller.ReactiveMAC{}),
		Miss: dataplane.MissController, ControlLatency: simtime.Millisecond,
	})
	New().SwitchOutage(simtime.Time(simtime.Second), simtime.Time(2*simtime.Second), spine).Apply(sim, simtime.Never)
	sim.Load(traffic.Trace{cbr(topo.MustLookup("h0"), topo.MustLookup("h2"), 0, 1.5e8, 5e7, 36000)})
	r := mustRun(sim, simtime.Time(simtime.Minute)).Flows()[0]
	if !r.Completed {
		t.Fatalf("flow outcome = %s: restarted switch never regained its defaults", r.Outcome)
	}

	// Case 2: the punting switch crashes while the reactive FlowMods are
	// in flight (they die with the wipe); after the restart the flow must
	// re-punt — the crash cleared its PacketIn dedup — and complete.
	topo2 := netgraph.LeafSpine(2, 1, 2, netgraph.Gig, netgraph.TenGig)
	leaf0 := topo2.MustLookup("leaf0")
	sim2 := flowsim.New(flowsim.Config{
		Topology: topo2, Controller: controller.NewChain(&controller.ReactiveMAC{}),
		Miss: dataplane.MissController, ControlLatency: simtime.Millisecond,
	})
	// Punt at t=0 → PacketIn delivered at 1ms → FlowMods land at 2ms; the
	// crash at 1.5ms swallows them.
	New().SwitchOutage(simtime.Time(1500*simtime.Microsecond), simtime.Time(simtime.Second), leaf0).Apply(sim2, simtime.Never)
	sim2.Load(traffic.Trace{cbr(topo2.MustLookup("h0"), topo2.MustLookup("h2"), 0, 1e6, 1e7, 36001)})
	r2 := mustRun(sim2, simtime.Time(simtime.Minute)).Flows()[0]
	if !r2.Completed {
		t.Fatalf("flow outcome = %s: punt dedup stranded a flow whose FlowMods died with the crash", r2.Outcome)
	}
	if r2.End < simtime.Time(simtime.Second) {
		t.Errorf("flow finished at %v, before the restart that unblocked it", r2.End)
	}
}

// TestControllerOutageAcrossEngines: while detached, punts are lost and
// flows wait; on reattach they re-announce and complete. Without a
// reattach they never move.
func TestControllerOutageAcrossEngines(t *testing.T) {
	mk := func() (*netgraph.Topology, traffic.Trace) {
		topo := netgraph.LeafSpine(2, 1, 2, netgraph.Gig, netgraph.TenGig)
		tr := traffic.Trace{cbr(topo.MustLookup("h0"), topo.MustLookup("h3"),
			simtime.Time(100*simtime.Millisecond), 1e6, 1e7, 32000)}
		return topo, tr
	}
	reactive := func() flowsim.Controller {
		return controller.NewChain(&controller.ReactiveMAC{})
	}

	// Flow level, no reattach: the punt is lost, the flow waits forever.
	topo, tr := mk()
	sim := flowsim.New(flowsim.Config{Topology: topo, Controller: reactive(), Miss: dataplane.MissController})
	New().ControllerDetach(simtime.Time(50*simtime.Millisecond)).Apply(sim, simtime.Never)
	sim.Load(tr)
	if r := mustRun(sim, simtime.Time(2*simtime.Second)).Flows()[0]; r.Completed {
		t.Fatal("flow completed with the controller detached")
	}

	// Flow level, with reattach at 300ms: the flow re-punts and completes
	// only after the channel returns.
	topo, tr = mk()
	sim = flowsim.New(flowsim.Config{Topology: topo, Controller: reactive(), Miss: dataplane.MissController})
	New().ControllerOutage(simtime.Time(50*simtime.Millisecond), simtime.Time(300*simtime.Millisecond)).Apply(sim, simtime.Never)
	sim.Load(tr)
	r := mustRun(sim, simtime.Time(2*simtime.Second)).Flows()[0]
	if !r.Completed {
		t.Fatalf("flow outcome = %s after reattach", r.Outcome)
	}
	if r.End < simtime.Time(300*simtime.Millisecond) {
		t.Errorf("flow finished at %v, before the controller reattached", r.End)
	}

	// Packet level, same story.
	topo, tr = mk()
	simP := packetsim.New(packetsim.Config{Topology: topo, Controller: reactive(), Miss: dataplane.MissController})
	New().ControllerOutage(simtime.Time(50*simtime.Millisecond), simtime.Time(300*simtime.Millisecond)).Apply(simP, simtime.Never)
	simP.Load(tr)
	rp := mustRun(simP, simtime.Time(2*simtime.Second)).Flows()[0]
	if !rp.Completed {
		t.Fatalf("packet flow outcome = %s after reattach", rp.Outcome)
	}
	if rp.End < simtime.Time(300*simtime.Millisecond) {
		t.Errorf("packet flow finished at %v, before the controller reattached", rp.End)
	}

	// Nested controller outages end at the LAST reattach, like link and
	// switch outages: 50–600ms overlapped by 300–900ms keeps the channel
	// down until 900ms.
	for _, engine := range []string{"flowsim", "packetsim"} {
		topo, tr = mk()
		tl := New().
			ControllerOutage(simtime.Time(50*simtime.Millisecond), simtime.Time(600*simtime.Millisecond)).
			ControllerOutage(simtime.Time(300*simtime.Millisecond), simtime.Time(900*simtime.Millisecond))
		var col *stats.Collector
		if engine == "flowsim" {
			simN := flowsim.New(flowsim.Config{Topology: topo, Controller: reactive(), Miss: dataplane.MissController})
			tl.Apply(simN, simtime.Never)
			simN.Load(tr)
			col = mustRun(simN, simtime.Time(2*simtime.Second))
		} else {
			simN := packetsim.New(packetsim.Config{Topology: topo, Controller: reactive(), Miss: dataplane.MissController})
			tl.Apply(simN, simtime.Never)
			simN.Load(tr)
			col = mustRun(simN, simtime.Time(2*simtime.Second))
		}
		rn := col.Flows()[0]
		if !rn.Completed {
			t.Fatalf("%s: nested outage flow outcome = %s", engine, rn.Outcome)
		}
		if rn.End < simtime.Time(900*simtime.Millisecond) {
			t.Errorf("%s: flow finished at %v — the inner reattach revived a channel the outer outage still held down", engine, rn.End)
		}
	}
}

// TestOverlappingOutagesCompose: a switch restart must not revive a link
// that is still inside its own scripted outage, in either engine. The
// link fails at 1s until 8s; its endpoint switch crashes at 2s and
// restarts at 3s; at the 5s bound the link must still be down.
func TestOverlappingOutagesCompose(t *testing.T) {
	script := func(topo *netgraph.Topology) (*Timeline, netgraph.LinkID) {
		s0, s1 := topo.MustLookup("s0"), topo.MustLookup("s1")
		direct := topo.LinkAt(s0, topo.PortToward(s0, s1)).ID
		tl := New().
			LinkOutage(simtime.Time(simtime.Second), simtime.Time(8*simtime.Second), direct).
			SwitchOutage(simtime.Time(2*simtime.Second), simtime.Time(3*simtime.Second), s0)
		return tl, direct
	}

	topoF := netgraph.Ring(4, netgraph.Gig, netgraph.TenGig)
	simF := flowsim.New(flowsim.Config{
		Topology: topoF, Controller: outageController(), Miss: dataplane.MissController,
	})
	tlF, directF := script(topoF)
	tlF.Apply(simF, simtime.Never)
	mustRun(simF, simtime.Time(5*simtime.Second))
	if topoF.Link(directF).Up {
		t.Error("flowsim: switch restart revived a link still inside its scripted outage")
	}

	topoP := netgraph.Ring(4, netgraph.Gig, netgraph.TenGig)
	simP := packetsim.New(packetsim.Config{
		Topology: topoP, Controller: outageController(), Miss: dataplane.MissController,
	})
	tlP, directP := script(topoP)
	tlP.Apply(simP, simtime.Never)
	mustRun(simP, simtime.Time(5*simtime.Second))
	if topoP.Link(directP).Up {
		t.Error("packetsim: switch restart revived a link still inside its scripted outage")
	}

	// Nested outages of the SAME link end at the outer recovery, not the
	// inner one.
	topoN := netgraph.Ring(4, netgraph.Gig, netgraph.TenGig)
	simN := flowsim.New(flowsim.Config{
		Topology: topoN, Controller: outageController(), Miss: dataplane.MissController,
	})
	s0N, s1N := topoN.MustLookup("s0"), topoN.MustLookup("s1")
	directN := topoN.LinkAt(s0N, topoN.PortToward(s0N, s1N)).ID
	New().
		LinkOutage(simtime.Time(simtime.Second), simtime.Time(10*simtime.Second), directN).
		LinkOutage(simtime.Time(2*simtime.Second), simtime.Time(3*simtime.Second), directN).
		Apply(simN, simtime.Never)
	mustRun(simN, simtime.Time(5*simtime.Second))
	if topoN.Link(directN).Up {
		t.Error("flowsim: inner recovery ended an outer outage of the same link")
	}

	// And the other direction of the overlap: a link "recovering" under a
	// still-crashed switch stays down until the switch restarts.
	topo2 := netgraph.Ring(4, netgraph.Gig, netgraph.TenGig)
	sim2 := flowsim.New(flowsim.Config{
		Topology: topo2, Controller: outageController(), Miss: dataplane.MissController,
	})
	tl2, direct2 := New(), netgraph.LinkID(0)
	{
		s0, s1 := topo2.MustLookup("s0"), topo2.MustLookup("s1")
		direct2 = topo2.LinkAt(s0, topo2.PortToward(s0, s1)).ID
		tl2.LinkOutage(simtime.Time(simtime.Second), simtime.Time(2*simtime.Second), direct2).
			SwitchOutage(simtime.Time(1500*simtime.Millisecond), simtime.Time(4*simtime.Second), s0)
	}
	tl2.Apply(sim2, simtime.Never)
	mustRun(sim2, simtime.Time(3*simtime.Second))
	if topo2.Link(direct2).Up {
		t.Error("flowsim: link recovery revived a link on a still-crashed switch")
	}
}

// TestReattachResyncsPortStatus: a link failure during a controller
// outage must reach the controller on reattach (current-state PortStatus
// resync), so PortStatus-driven policies reconverge on topology changes
// they never saw happen.
func TestReattachResyncsPortStatus(t *testing.T) {
	topo := netgraph.Ring(4, netgraph.Gig, netgraph.TenGig)
	h := func(n string) netgraph.NodeID { return topo.MustLookup(n) }
	s0, s1 := h("s0"), h("s1")
	direct := topo.LinkAt(s0, topo.PortToward(s0, s1)).ID

	sim := flowsim.New(flowsim.Config{
		Topology: topo, Controller: outageController(), Miss: dataplane.MissController,
		ControlLatency: simtime.Millisecond,
	})
	// The link dies at 1s — inside the 0.5s–2s controller outage — and
	// never recovers; only the reattach resync can tell the controller.
	New().
		ControllerOutage(simtime.Time(500*simtime.Millisecond), simtime.Time(2*simtime.Second)).
		LinkDown(simtime.Time(simtime.Second), direct).
		Apply(sim, simtime.Never)
	sim.Load(traffic.Trace{cbr(h("h0"), h("h1"), 0, 2e8, 5e7, 34000)}) // 4s transfer
	col := mustRun(sim, simtime.Time(simtime.Minute))

	r := col.Flows()[0]
	if !r.Completed {
		t.Fatalf("flow outcome = %s: controller never learned of the failure", r.Outcome)
	}
	if r.End < simtime.Time(2*simtime.Second) {
		t.Errorf("flow finished at %v, before the reattach that unblocked it", r.End)
	}
	if col.PathChanges == 0 {
		t.Error("flow never rerouted despite the resync")
	}
}

// TestDetachCatchesInFlightPortStatus: a PortStatus still in flight when
// the controller detaches is lost at delivery, but the link change it
// announced must still resync on reattach — otherwise the controller's
// half-executed reaction (reconvergence FlowMods dropped by the send
// gate) would leave stale rules forever.
func TestDetachCatchesInFlightPortStatus(t *testing.T) {
	topo := netgraph.Ring(4, netgraph.Gig, netgraph.TenGig)
	h := func(n string) netgraph.NodeID { return topo.MustLookup(n) }
	s0, s1 := h("s0"), h("s1")
	direct := topo.LinkAt(s0, topo.PortToward(s0, s1)).ID

	sim := flowsim.New(flowsim.Config{
		Topology: topo, Controller: outageController(), Miss: dataplane.MissController,
		ControlLatency: simtime.Millisecond,
	})
	// LinkDown at 1s emits PortStatus for delivery at 1.001s; the detach
	// at 1.0005s catches it mid-flight. The link never recovers, so only
	// the reattach resync can trigger the reroute.
	New().
		LinkDown(simtime.Time(simtime.Second), direct).
		ControllerOutage(simtime.Time(simtime.Second+500*simtime.Microsecond), simtime.Time(2*simtime.Second)).
		Apply(sim, simtime.Never)
	sim.Load(traffic.Trace{cbr(h("h0"), h("h1"), 0, 2e8, 5e7, 35000)}) // 4s transfer
	col := mustRun(sim, simtime.Time(simtime.Minute))

	r := col.Flows()[0]
	if !r.Completed {
		t.Fatalf("flow outcome = %s: the in-flight PortStatus was swallowed without a resync", r.Outcome)
	}
	if r.End < simtime.Time(2*simtime.Second) {
		t.Errorf("flow finished at %v, before the reattach that unblocked it", r.End)
	}
}

// TestSurgeInjectsShiftedDemands: a surge's demands arrive shifted to the
// surge instant, through the same Load path as the base workload.
func TestSurgeInjectsShiftedDemands(t *testing.T) {
	topo := netgraph.LeafSpine(2, 1, 2, netgraph.Gig, netgraph.TenGig)
	h0, h3 := topo.MustLookup("h0"), topo.MustLookup("h3")
	sim := flowsim.New(flowsim.Config{
		Topology: topo, Controller: outageController(), Miss: dataplane.MissController,
	})
	New().Surge(simtime.Time(simtime.Second), traffic.Trace{
		cbr(h0, h3, 0, 1e6, 1e7, 33000),
		cbr(h0, h3, simtime.Time(100*simtime.Millisecond), 1e6, 1e7, 33001),
	}).Apply(sim, simtime.Never)
	col := mustRun(sim, simtime.Time(simtime.Minute))
	recs := col.Flows()
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	wants := []simtime.Time{simtime.Time(simtime.Second), simtime.Time(simtime.Second + 100*simtime.Millisecond)}
	for i, r := range recs {
		if r.Arrival != wants[i] {
			t.Errorf("surge flow %d arrived at %v, want %v", r.ID, r.Arrival, wants[i])
		}
		if !r.Completed {
			t.Errorf("surge flow %d: %s", r.ID, r.Outcome)
		}
	}
}

// TestTimelineValidate pins the validation satellite: negative event
// times, unknown link/switch subjects, host nodes posing as switches, and
// events beyond the run horizon all fail with a typed *EventError, and a
// clean timeline passes at any horizon.
func TestTimelineValidate(t *testing.T) {
	topo := netgraph.LeafSpine(2, 2, 2, netgraph.Gig, netgraph.TenGig)
	host := topo.Hosts()[0]
	spine := topo.MustLookup("spine0")
	link := topo.Links()[0].ID
	horizon := simtime.Time(10 * simtime.Second)

	cases := []struct {
		name   string
		tl     *Timeline
		reason string
	}{
		{"negative time", New().LinkDown(-1, link), "negative"},
		{"unknown link", New().LinkDown(simtime.Time(simtime.Second), netgraph.LinkID(9999)), "unknown link"},
		{"unknown switch", New().SwitchFail(simtime.Time(simtime.Second), netgraph.NodeID(9999)), "unknown switch"},
		{"host as switch", New().SwitchFail(simtime.Time(simtime.Second), host), "not a switch"},
		{"beyond horizon", New().LinkDown(horizon+1, link), "after the run horizon"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.tl.Validate(topo, horizon)
			if err == nil {
				t.Fatal("Validate accepted an invalid timeline")
			}
			var ee *EventError
			if !errors.As(err, &ee) {
				t.Fatalf("error %T, want *EventError", err)
			}
			if !strings.Contains(err.Error(), tc.reason) {
				t.Errorf("error %q does not mention %q", err, tc.reason)
			}
		})
	}

	good := New().
		LinkOutage(simtime.Time(simtime.Second), simtime.Time(2*simtime.Second), link).
		SwitchOutage(simtime.Time(3*simtime.Second), simtime.Time(4*simtime.Second), spine).
		ControllerOutage(simtime.Time(5*simtime.Second), simtime.Time(6*simtime.Second))
	if err := good.Validate(topo, horizon); err != nil {
		t.Fatalf("valid timeline rejected: %v", err)
	}
	// Never disables the horizon check but nothing else.
	if err := New().LinkDown(horizon+1, link).Validate(topo, simtime.Never); err != nil {
		t.Fatalf("horizon check not disabled at Never: %v", err)
	}
}

// TestApplyRejectsInvalidAndSchedulesNothing: a bad timeline fails Apply
// before any event reaches the engine.
func TestApplyRejectsInvalidAndSchedulesNothing(t *testing.T) {
	topo := netgraph.LeafSpine(2, 2, 2, netgraph.Gig, netgraph.TenGig)
	sim := flowsim.New(flowsim.Config{Topology: topo})
	before := sim.Kernel().Len()
	bad := New().
		LinkDown(simtime.Time(simtime.Second), topo.Links()[0].ID).
		SwitchFail(simtime.Time(2*simtime.Second), netgraph.NodeID(9999))
	if err := bad.Apply(sim, simtime.Never); err == nil {
		t.Fatal("Apply accepted an unknown switch")
	}
	if sim.Kernel().Len() != before {
		t.Errorf("Apply scheduled %d events despite the validation error", sim.Kernel().Len()-before)
	}
	// The horizon passed to Apply gates late events too.
	late := New().LinkDown(simtime.Time(5*simtime.Second), topo.Links()[0].ID)
	if err := late.Apply(sim, simtime.Time(simtime.Second)); err == nil {
		t.Fatal("Apply accepted an event beyond the run horizon")
	}
}
