// Package scenario is the timeline engine for dynamic networks: a
// deterministic, seed-reproducible script of topology and control-plane
// events — link failures and recoveries, switch crashes and restarts with
// table wipes, controller detach/reattach, and demand surges — that
// compiles onto any simulation engine through one shared interface. The
// flow-level engine, the packet-level engine, and the hybrid coupler all
// implement Engine, so the same scripted failure drives all three
// fidelities event-for-event (the fs-style scripted-trace idea applied to
// topology dynamics rather than traffic alone).
//
// A Timeline is built with chainable calls:
//
//	tl := scenario.New().
//		LinkOutage(3*simtime.Second, 8*simtime.Second, direct).
//		SwitchOutage(4*simtime.Second, 5*simtime.Second, spine0).
//		ControllerOutage(6*simtime.Second, 7*simtime.Second)
//	tl.Apply(sim, horizon) // any of flowsim / packetsim / hybrid
//
// or generated: RandomLinkFailures draws a reproducible failure/recovery
// process (exponential inter-failure times, fixed repair time) over the
// eligible links. After the run, Evaluate summarizes what the scripted
// disruption cost: reroute latency, flows and packets lost, rule churn,
// and FCT stretch against a failure-free baseline.
package scenario

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"horse/internal/dataplane"
	"horse/internal/linkmodel"
	"horse/internal/metrics"
	"horse/internal/netgraph"
	"horse/internal/simcore"
	"horse/internal/simevent"
	"horse/internal/simtime"
	"horse/internal/stats"
	"horse/internal/traffic"
)

// Kind discriminates timeline events.
type Kind uint8

// Timeline event kinds.
const (
	// LinkDown fails a link; queued and in-flight packets on it are lost.
	LinkDown Kind = iota
	// LinkUp recovers a failed link.
	LinkUp
	// SwitchFail crashes a switch: attached links drop and its OpenFlow
	// state is wiped.
	SwitchFail
	// SwitchRestart brings a crashed switch back with empty tables.
	SwitchRestart
	// ControllerDetach severs the switch↔controller channel.
	ControllerDetach
	// ControllerReattach restores the channel; parked work re-announces.
	ControllerReattach
	// DemandSurge injects an extra traffic burst at the event time.
	DemandSurge
	// LinkDegrade installs a degradation model (loss, burst, rate
	// adaptation) on both directions of a link. The link stays up: the
	// model shapes how well it carries traffic, composing with scripted
	// outages through dataplane.FailureState.
	LinkDegrade
	// LinkRestore clears a degraded link back to pristine.
	LinkRestore
)

func (k Kind) String() string {
	switch k {
	case LinkDown:
		return "link-down"
	case LinkUp:
		return "link-up"
	case SwitchFail:
		return "switch-fail"
	case SwitchRestart:
		return "switch-restart"
	case ControllerDetach:
		return "controller-detach"
	case ControllerReattach:
		return "controller-reattach"
	case DemandSurge:
		return "demand-surge"
	case LinkDegrade:
		return "link-degrade"
	case LinkRestore:
		return "link-restore"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one scripted occurrence on a timeline.
type Event struct {
	At   simtime.Time
	Kind Kind
	// Link is the subject of LinkDown/LinkUp/LinkDegrade/LinkRestore.
	Link netgraph.LinkID
	// Model is the degradation installed by LinkDegrade (required there,
	// unused elsewhere).
	Model linkmodel.Model
	// Switch is the subject of SwitchFail/SwitchRestart.
	Switch netgraph.NodeID
	// Demands is the DemandSurge burst; each demand's Start is relative
	// to the event time.
	Demands traffic.Trace
}

// Engine is the one simulator surface of Horse: every engine — the
// flow-level simulator, the packet-level simulator, and the hybrid
// coupler — implements it, each mapping the same calls to its own
// fidelity's semantics. It is the interface the public façade exposes as
// horse.Engine (this package hosts it because the timeline compiler is
// its lowest-level consumer): feed with Load and the Schedule*Change
// methods (or a Timeline), execute with Run, inspect through Topology /
// Network / Kernel / Collector / Now, and hook dynamics with Observe.
type Engine interface {
	// Topology returns the simulated network graph.
	Topology() *netgraph.Topology
	// Network returns the shared OpenFlow data-plane state (switch
	// tables), e.g. for pre-installing rules.
	Network() *dataplane.Network
	// Kernel returns the discrete-event kernel driving the engine (the
	// coordinator kernel of a sharded run).
	Kernel() *simcore.Kernel
	// Collector returns the engine's statistics collector.
	Collector() *stats.Collector
	// Now returns the current virtual time.
	Now() simtime.Time
	// Load schedules every demand in the trace.
	Load(tr traffic.Trace)
	// Run executes until the event queue drains, virtual time exceeds
	// until (simtime.Never = no bound), or ctx is cancelled — in which
	// case the returned collector is partial but consistent and the
	// error is ctx.Err(). Run may be called once.
	Run(ctx context.Context, until simtime.Time) (*stats.Collector, error)
	// ScheduleLinkChange schedules a link failure (up=false) or recovery.
	ScheduleLinkChange(at simtime.Time, link netgraph.LinkID, up bool)
	// ScheduleSwitchChange schedules a switch crash (up=false) or restart.
	ScheduleSwitchChange(at simtime.Time, sw netgraph.NodeID, up bool)
	// ScheduleControllerChange schedules a controller detach
	// (attached=false) or reattach.
	ScheduleControllerChange(at simtime.Time, attached bool)
	// ScheduleLinkDegrade schedules a link-model change: m installs a
	// degradation model on both directions of the link (nil restores the
	// pristine link). Orthogonal to ScheduleLinkChange: FailureState still
	// decides up/down, and the model shapes traffic only while up.
	ScheduleLinkDegrade(at simtime.Time, link netgraph.LinkID, m linkmodel.Model)
	// Observe registers an observer of applied network dynamics.
	Observe(fn simevent.Observer)
}

// Timeline is an ordered script of network events. Build with New and the
// chainable adders, then Apply it to an engine before Run.
type Timeline struct {
	events []Event
}

// New returns an empty timeline.
func New() *Timeline { return &Timeline{} }

func (t *Timeline) add(e Event) *Timeline {
	t.events = append(t.events, e)
	return t
}

// LinkDown scripts a link failure at time at.
func (t *Timeline) LinkDown(at simtime.Time, link netgraph.LinkID) *Timeline {
	return t.add(Event{At: at, Kind: LinkDown, Link: link})
}

// LinkUp scripts a link recovery at time at.
func (t *Timeline) LinkUp(at simtime.Time, link netgraph.LinkID) *Timeline {
	return t.add(Event{At: at, Kind: LinkUp, Link: link})
}

// LinkOutage scripts a failure at `from` with recovery at `to`.
func (t *Timeline) LinkOutage(from, to simtime.Time, link netgraph.LinkID) *Timeline {
	return t.LinkDown(from, link).LinkUp(to, link)
}

// SwitchFail scripts a switch crash (links down, tables wiped) at at.
func (t *Timeline) SwitchFail(at simtime.Time, sw netgraph.NodeID) *Timeline {
	return t.add(Event{At: at, Kind: SwitchFail, Switch: sw})
}

// SwitchRestart scripts a switch restart (links up, tables empty) at at.
func (t *Timeline) SwitchRestart(at simtime.Time, sw netgraph.NodeID) *Timeline {
	return t.add(Event{At: at, Kind: SwitchRestart, Switch: sw})
}

// SwitchOutage scripts a crash at `from` with restart at `to`.
func (t *Timeline) SwitchOutage(from, to simtime.Time, sw netgraph.NodeID) *Timeline {
	return t.SwitchFail(from, sw).SwitchRestart(to, sw)
}

// ControllerDetach scripts the control channel failing at at.
func (t *Timeline) ControllerDetach(at simtime.Time) *Timeline {
	return t.add(Event{At: at, Kind: ControllerDetach})
}

// ControllerReattach scripts the control channel returning at at.
func (t *Timeline) ControllerReattach(at simtime.Time) *Timeline {
	return t.add(Event{At: at, Kind: ControllerReattach})
}

// ControllerOutage scripts a detach at `from` with reattach at `to`.
func (t *Timeline) ControllerOutage(from, to simtime.Time) *Timeline {
	return t.ControllerDetach(from).ControllerReattach(to)
}

// LinkDegrade scripts a degradation model installing on link at time at.
func (t *Timeline) LinkDegrade(at simtime.Time, link netgraph.LinkID, m linkmodel.Model) *Timeline {
	return t.add(Event{At: at, Kind: LinkDegrade, Link: link, Model: m})
}

// LinkRestore scripts a degraded link returning to pristine at time at.
func (t *Timeline) LinkRestore(at simtime.Time, link netgraph.LinkID) *Timeline {
	return t.add(Event{At: at, Kind: LinkRestore, Link: link})
}

// DegradeWindow scripts a degradation at `from` with restore at `to`.
func (t *Timeline) DegradeWindow(from, to simtime.Time, link netgraph.LinkID, m linkmodel.Model) *Timeline {
	return t.LinkDegrade(from, link, m).LinkRestore(to, link)
}

// Surge scripts a traffic burst: every demand in tr is injected with its
// Start shifted by at (a demand with Start 0 arrives exactly at at).
func (t *Timeline) Surge(at simtime.Time, tr traffic.Trace) *Timeline {
	return t.add(Event{At: at, Kind: DemandSurge, Demands: tr})
}

// Events returns the timeline sorted by time (the stable sort keeps
// insertion order on ties), as Apply schedules it. The returned slice is
// a copy.
func (t *Timeline) Events() []Event {
	out := append([]Event(nil), t.events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// EventError reports a timeline event that cannot be scheduled: a
// negative time, an unknown link or switch, or an instant beyond the run
// horizon. Index is the event's position in time order (what Events
// returns).
type EventError struct {
	Index  int
	Event  Event
	Reason string
}

func (e *EventError) Error() string {
	return fmt.Sprintf("scenario: event %d (%s at %v): %s", e.Index, e.Event.Kind, e.Event.At, e.Reason)
}

// Validate checks every timeline event against a topology and a run
// horizon (simtime.Never disables the horizon check): event times must be
// non-negative and at or before the horizon, links and switches must
// exist (and switch events must name a switch, not a host), degradations
// must carry a valid model, and no two link events may target the same
// link at the same instant (same-instant duplicates would apply in
// insertion order — a silent race in the script, rejected loudly
// instead). It returns the first offending event, in time order.
func (t *Timeline) Validate(topo *netgraph.Topology, horizon simtime.Time) error {
	type linkInstant struct {
		at   simtime.Time
		link netgraph.LinkID
	}
	seen := make(map[linkInstant]Kind)
	for i, e := range t.Events() {
		fail := func(reason string) error {
			return &EventError{Index: i, Event: e, Reason: reason}
		}
		if e.At < 0 {
			return fail("negative event time")
		}
		if horizon != simtime.Never && e.At > horizon {
			return fail(fmt.Sprintf("scheduled after the run horizon %v", horizon))
		}
		switch e.Kind {
		case LinkDown, LinkUp, LinkDegrade, LinkRestore:
			if int(e.Link) < 0 || int(e.Link) >= topo.NumLinks() {
				return fail(fmt.Sprintf("unknown link %d", e.Link))
			}
			key := linkInstant{e.At, e.Link}
			if prev, dup := seen[key]; dup {
				return fail(fmt.Sprintf("duplicate same-instant event on link %d (already has %s at %v)",
					e.Link, prev, e.At))
			}
			seen[key] = e.Kind
			if e.Kind == LinkDegrade {
				if e.Model == nil {
					return fail("LinkDegrade without a model")
				}
				if err := linkmodel.Validate(e.Model); err != nil {
					return fail(err.Error())
				}
			}
		case SwitchFail, SwitchRestart:
			if int(e.Switch) < 0 || int(e.Switch) >= topo.NumNodes() {
				return fail(fmt.Sprintf("unknown switch %d", e.Switch))
			}
			if topo.Node(e.Switch).Kind != netgraph.KindSwitch {
				return fail(fmt.Sprintf("node %d is not a switch", e.Switch))
			}
		}
	}
	return nil
}

// Apply compiles the timeline onto an engine: every event becomes a
// scheduled simulator event (and surges become loaded demands). The
// timeline is validated first — against the engine's topology and the run
// horizon the caller will pass to Run (simtime.Never for an unbounded
// run) — and nothing schedules on error, so a mistyped link ID or an
// event beyond the horizon fails loudly instead of silently
// mis-scheduling. Call it before Run, alongside the workload Load; it may
// be applied to any number of engines, which is how cross-fidelity
// comparisons script one failure story for all three.
func (t *Timeline) Apply(eng Engine, horizon simtime.Time) error {
	if err := t.Validate(eng.Topology(), horizon); err != nil {
		return err
	}
	for _, e := range t.Events() {
		switch e.Kind {
		case LinkDown:
			eng.ScheduleLinkChange(e.At, e.Link, false)
		case LinkUp:
			eng.ScheduleLinkChange(e.At, e.Link, true)
		case SwitchFail:
			eng.ScheduleSwitchChange(e.At, e.Switch, false)
		case SwitchRestart:
			eng.ScheduleSwitchChange(e.At, e.Switch, true)
		case ControllerDetach:
			eng.ScheduleControllerChange(e.At, false)
		case ControllerReattach:
			eng.ScheduleControllerChange(e.At, true)
		case LinkDegrade:
			eng.ScheduleLinkDegrade(e.At, e.Link, e.Model)
		case LinkRestore:
			eng.ScheduleLinkDegrade(e.At, e.Link, nil)
		case DemandSurge:
			shifted := make(traffic.Trace, len(e.Demands))
			for i, d := range e.Demands {
				d.Start = e.At.Add(simtime.Duration(d.Start))
				shifted[i] = d
			}
			eng.Load(shifted)
		}
	}
	return nil
}

// Failures counts the disruptive events (link downs, switch crashes,
// controller detaches) on the timeline.
func (t *Timeline) Failures() int {
	n := 0
	for _, e := range t.events {
		switch e.Kind {
		case LinkDown, SwitchFail, ControllerDetach:
			n++
		}
	}
	return n
}

// FirstFailure returns the earliest disruptive event time; ok is false for
// a timeline with no disruptions.
func (t *Timeline) FirstFailure() (at simtime.Time, ok bool) {
	at = simtime.Never
	for _, e := range t.events {
		switch e.Kind {
		case LinkDown, SwitchFail, ControllerDetach:
			if e.At < at {
				at, ok = e.At, true
			}
		}
	}
	return at, ok
}

// FailureConfig parameterizes RandomLinkFailures.
type FailureConfig struct {
	// Seed makes the process reproducible: the same seed over the same
	// topology always yields the same timeline.
	Seed int64
	// MTBF is the mean time between failures per eligible link
	// (exponential inter-failure times).
	MTBF simtime.Duration
	// Recovery is the repair time of every failure.
	Recovery simtime.Duration
	// Horizon bounds failure injection to [0, Horizon); recoveries may
	// land beyond it.
	Horizon simtime.Time
	// CoreOnly restricts failures to switch–switch links, leaving host
	// access links alone (the common fabric-resilience setup).
	CoreOnly bool
}

// RandomLinkFailures draws a seed-reproducible failure/recovery process
// over the topology's links: each eligible link independently alternates
// exponential up-times (mean MTBF) with fixed repair times. Links are
// visited in creation order and share one generator, so the timeline is a
// pure function of (topology, config).
func RandomLinkFailures(topo *netgraph.Topology, cfg FailureConfig) *Timeline {
	tl := New()
	// A negative Recovery would walk `at` backwards and never reach the
	// horizon; reject it like the other degenerate configs.
	if cfg.MTBF <= 0 || cfg.Horizon <= 0 || cfg.Recovery < 0 {
		return tl
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, l := range topo.Links() {
		if cfg.CoreOnly {
			if topo.Node(l.A).Kind != netgraph.KindSwitch || topo.Node(l.B).Kind != netgraph.KindSwitch {
				continue
			}
		}
		at := simtime.Time(rng.ExpFloat64() * float64(cfg.MTBF))
		for at < cfg.Horizon {
			tl.LinkOutage(at, at.Add(cfg.Recovery), l.ID)
			at = at.Add(cfg.Recovery).Add(simtime.Duration(rng.ExpFloat64() * float64(cfg.MTBF)))
		}
	}
	return tl
}

// Outcome summarizes what a scripted disruption cost one run — the
// per-scenario resilience metrics (built on package metrics) that E8
// sweeps.
type Outcome struct {
	// Failures is the number of disruptive events on the timeline.
	Failures int
	// Reroutes counts transmitting-path changes during the run. Path
	// state is a flow-level concept: standalone packetsim runs (which
	// track no per-flow paths) always report 0 here; hybrid runs report
	// the flow engine's reroutes.
	Reroutes int
	// RerouteLatency is the gap between the first failure and the first
	// path change at or after it — how long the first reconvergence took
	// (0 when nothing rerouted; group watch-port failover reroutes at the
	// failure instant). Flow-level only, like Reroutes.
	RerouteLatency simtime.Duration
	// FlowsCompleted and FlowsLost partition the recorded flows: lost
	// covers every non-completed outcome (dropped, stuck waiting,
	// expired).
	FlowsCompleted int
	FlowsLost      int
	// PacketsLost counts packet-engine losses to dead links/switches.
	PacketsLost uint64
	// RuleChurn is the reconvergence write load: table mutations the
	// control plane issued beyond the baseline run's (which carries the
	// initial proactive installation). Without a baseline it is the
	// run's total FlowMods.
	RuleChurn uint64
	// FCTStretch is the mean-FCT ratio against the baseline run over the
	// flows completed in BOTH runs (matched by flow ID, so flows the
	// disruption killed cannot flatter the ratio by dropping out of only
	// one side); +Inf when the baseline completed flows but the
	// disturbed run completed none of them, 1 with no baseline.
	FCTStretch float64
}

// Evaluate computes the Outcome of a run driven by tl. baseline, when
// non-nil, is the collector of an identical run without the timeline; it
// anchors FCTStretch and nets the startup installation out of RuleChurn.
func Evaluate(tl *Timeline, col *stats.Collector, baseline *stats.Collector) Outcome {
	out := Outcome{
		Failures:    tl.Failures(),
		Reroutes:    len(col.RerouteTimes()),
		RuleChurn:   col.FlowMods,
		FCTStretch:  1,
		PacketsLost: col.PacketsLost,
	}
	if baseline != nil {
		if baseline.FlowMods < out.RuleChurn {
			out.RuleChurn -= baseline.FlowMods
		} else {
			out.RuleChurn = 0
		}
	}
	for _, f := range col.Flows() {
		if f.Completed {
			out.FlowsCompleted++
		} else {
			out.FlowsLost++
		}
	}
	if first, ok := tl.FirstFailure(); ok {
		for _, at := range col.RerouteTimes() {
			if at >= first {
				out.RerouteLatency = at.Sub(first)
				break
			}
		}
	}
	if baseline != nil {
		// Match by flow ID (both runs load the identical trace, so IDs
		// align) and compare only flows completed in both — a disruption
		// that kills the slowest flows must not lower the stretch by
		// removing them from one side's mean.
		baseFCT := make(map[int64]float64)
		for _, f := range baseline.Flows() {
			if f.Completed {
				baseFCT[f.ID] = f.FCT().Seconds()
			}
		}
		var sFCTs, bFCTs []float64
		for _, f := range col.Flows() {
			if b, ok := baseFCT[f.ID]; ok && f.Completed {
				sFCTs = append(sFCTs, f.FCT().Seconds())
				bFCTs = append(bFCTs, b)
			}
		}
		out.FCTStretch = metrics.FCTStretch(sFCTs, bFCTs)
		if len(sFCTs) == 0 && len(baseFCT) > 0 {
			out.FCTStretch = math.Inf(1)
		}
	}
	return out
}
