package service

import (
	"sync"

	"horse/api/wire"
)

// Push is one server-push event bound for a subscriber: a progress
// report, a finalized flow record, or the terminal Done marker of a
// session stream.
type Push struct {
	Session string
	// Event is wire.EventProgress, wire.EventRecord, or wire.EventDone.
	Event    string
	Progress *wire.ProgressEvent
	Record   *wire.Record
	Done     *wire.DoneEvent
}

// Subscriber is one consumer of session push events — in the daemon, one
// per connection, receiving the interleaved streams of every session the
// connection watches (pushes carry their session ID). Events of one
// session arrive in exact engine order.
//
// Delivery is blocking with a buffer: a subscriber that stops consuming
// exerts backpressure on the publishing session (the simulation
// goroutine parks in the send), never loses events, and releases the
// publisher the moment it is closed.
type Subscriber struct {
	c    chan Push
	quit chan struct{}
	once sync.Once
}

// NewSubscriber returns a subscriber with the given channel buffer
// (minimum 1).
func NewSubscriber(buffer int) *Subscriber {
	if buffer < 1 {
		buffer = 1
	}
	return &Subscriber{c: make(chan Push, buffer), quit: make(chan struct{})}
}

// C is the event channel. It is never closed — consumers stop on the
// Done push of the session they follow, or when their connection dies
// and they Close the subscriber.
func (s *Subscriber) C() <-chan Push { return s.c }

// Close detaches the subscriber: publishers skip it from now on, and any
// publisher blocked on its buffer unparks. Close is idempotent.
func (s *Subscriber) Close() {
	s.once.Do(func() { close(s.quit) })
}

// send delivers p unless the subscriber is closed.
func (s *Subscriber) send(p Push) {
	select {
	case <-s.quit:
	case s.c <- p:
	}
}

// closed reports whether Close was called.
func (s *Subscriber) closed() bool {
	select {
	case <-s.quit:
		return true
	default:
		return false
	}
}
