package service_test

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"horse"
	"horse/api/wire"
	"horse/internal/service"
	"horse/internal/simtime"
)

// flowSpec is a small deterministic flow-engine session: two explicit
// demands on a leaf-spine fabric under a link flap.
func flowSpec() *wire.SessionSpec {
	return &wire.SessionSpec{
		Topology: wire.TopoSpec{Kind: wire.TopoLeafSpine, Leaves: 2, Spines: 2, Hosts: 2},
		Workload: wire.WorkloadSpec{Demands: []wire.DemandSpec{
			{Src: "h0", Dst: "h3", SizeBits: 8e5, RateBps: wire.Float(math.Inf(1)), TCP: true},
			{Src: "h1", Dst: "h2", StartNs: 1e6, SizeBits: 8e5, RateBps: 1e8},
		}},
		Scenario: []wire.EventSpec{
			{AtNs: 2e6, Kind: wire.EventLinkDown, LinkA: "leaf0", LinkB: "spine0"},
			{AtNs: 5e6, Kind: wire.EventLinkUp, LinkA: "leaf0", LinkB: "spine0"},
		},
		Options: wire.OptionsSpec{
			Controller: []wire.AppSpec{{Kind: wire.AppProactiveMAC}},
			Miss:       "controller",
		},
		UntilNs: int64(10 * simtime.Second),
	}
}

// busySpec is a session with thousands of events, so it reliably spans
// many progress periods (the backpressure tests park it mid-run).
func busySpec() *wire.SessionSpec {
	return &wire.SessionSpec{
		Topology: wire.TopoSpec{Kind: wire.TopoLeafSpine, Leaves: 2, Spines: 2, Hosts: 4},
		Workload: wire.WorkloadSpec{Poisson: &wire.PoissonSpec{
			Seed: 11, Lambda: 2000, HorizonNs: int64(5 * simtime.Second),
			Size: wire.SizeSpec{Kind: wire.SizeFixed, Bits: 1e5}, TCPFraction: 0.5,
		}},
		Options: wire.OptionsSpec{
			Controller: []wire.AppSpec{{Kind: wire.AppProactiveMAC}},
			Miss:       "controller",
		},
		UntilNs: int64(30 * simtime.Second),
	}
}

// drainSession consumes sub until the given session's Done push,
// returning its records (in arrival order) and the Done event. Pushes of
// other sessions are ignored.
func drainSession(t *testing.T, sub *service.Subscriber, session string) ([]wire.Record, wire.DoneEvent) {
	t.Helper()
	var recs []wire.Record
	timeout := time.After(60 * time.Second)
	for {
		select {
		case p := <-sub.C():
			if p.Session != session {
				continue
			}
			switch p.Event {
			case wire.EventRecord:
				recs = append(recs, *p.Record)
			case wire.EventDone:
				return recs, *p.Done
			}
		case <-timeout:
			t.Fatalf("session %s: no Done push within 60s", session)
		}
	}
}

// oneShotRecords runs the spec in-process and returns its records in
// wire encoding — the parity baseline for daemon-run sessions.
func oneShotRecords(t *testing.T, spec *wire.SessionSpec) []wire.Record {
	t.Helper()
	eng, until, err := horse.NewFromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	col, err := eng.Run(context.Background(), until)
	if err != nil {
		t.Fatal(err)
	}
	flows := col.Flows()
	recs := make([]wire.Record, len(flows))
	for i, r := range flows {
		recs[i] = wire.FromRecord(r)
	}
	return recs
}

func assertRecordsEqual(t *testing.T, label string, got, want []wire.Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d records, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: record %d differs:\n got  %+v\n want %+v", label, i, got[i], want[i])
		}
	}
}

func TestSessionLifecycle(t *testing.T) {
	mgr := service.New(service.Config{})
	sub := service.NewSubscriber(4096)
	defer sub.Close()

	st, err := mgr.Submit(flowSpec(), "lifecycle", true, sub)
	if err != nil {
		t.Fatal(err)
	}
	if st.Session == "" || st.Name != "lifecycle" || !st.Stream {
		t.Fatalf("submit status %+v", st)
	}
	recs, done := drainSession(t, sub, st.Session)
	if done.State != wire.StateDone {
		t.Fatalf("done state %q (%s)", done.State, done.Error)
	}
	if done.Summary == nil || done.Summary.Records != len(recs) {
		t.Fatalf("summary %+v, streamed %d records", done.Summary, len(recs))
	}
	if done.Summary.Counters.FlowsCompleted != 2 {
		t.Fatalf("counters %+v", done.Summary.Counters)
	}

	final, err := mgr.Status(st.Session)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != wire.StateDone || final.Summary == nil {
		t.Fatalf("final status %+v", final)
	}
	if got := mgr.List(); len(got) != 1 || got[0].Session != st.Session {
		t.Fatalf("list %+v", got)
	}

	if _, err := mgr.Retire(st.Session); err != nil {
		t.Fatal(err)
	}
	var nf *service.NotFoundError
	if _, err := mgr.Status(st.Session); !errors.As(err, &nf) {
		t.Fatalf("status after retire: %v, want *NotFoundError", err)
	}
	if got := mgr.List(); len(got) != 0 {
		t.Fatalf("list after retire %+v", got)
	}
}

func TestStreamedRecordsMatchOneShot(t *testing.T) {
	mgr := service.New(service.Config{})
	sub := service.NewSubscriber(4096)
	defer sub.Close()

	st, err := mgr.Submit(flowSpec(), "", true, sub)
	if err != nil {
		t.Fatal(err)
	}
	recs, done := drainSession(t, sub, st.Session)
	if done.State != wire.StateDone {
		t.Fatalf("done %+v", done)
	}
	assertRecordsEqual(t, "streamed", recs, oneShotRecords(t, flowSpec()))
	// Streamed sessions retain nothing server-side: the summary skips the
	// FCT distribution (the client has every record to compute it from).
	if done.Summary.FCT != nil {
		t.Fatalf("streamed session retained an FCT distribution: %+v", done.Summary.FCT)
	}
}

func TestRetainedReplayMatchesOneShot(t *testing.T) {
	mgr := service.New(service.Config{})
	sub := service.NewSubscriber(4096)
	defer sub.Close()

	// Non-streamed: the subscriber still receives the replay at finalize.
	st, err := mgr.Submit(flowSpec(), "", false, sub)
	if err != nil {
		t.Fatal(err)
	}
	recs, done := drainSession(t, sub, st.Session)
	if done.State != wire.StateDone {
		t.Fatalf("done %+v", done)
	}
	assertRecordsEqual(t, "replayed", recs, oneShotRecords(t, flowSpec()))
	if done.Summary.FCT == nil || done.Summary.FCT.N == 0 {
		t.Fatalf("retained session lost its FCT distribution: %+v", done.Summary)
	}

	// A late Watch replays the retained records again.
	late := service.NewSubscriber(4096)
	defer late.Close()
	if _, err := mgr.Watch(st.Session, late); err != nil {
		t.Fatal(err)
	}
	recs2, done2 := drainSession(t, late, st.Session)
	assertRecordsEqual(t, "late watch", recs2, recs)
	if done2.State != wire.StateDone {
		t.Fatalf("late done %+v", done2)
	}
}

// parkedSession submits a busy streaming session against a tiny
// subscriber buffer and waits until the session is parked publishing
// into it: the first progress push fills the buffer, the second blocks
// the simulation goroutine. Deterministic mid-run state for the
// admission and cancellation tests.
func parkedSession(t *testing.T, mgr *service.Manager, workers int) (wire.SessionStatus, *service.Subscriber) {
	t.Helper()
	spec := busySpec()
	spec.Options.Shards = workers
	sub := service.NewSubscriber(1)
	st, err := mgr.Submit(spec, "parked", true, sub)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		cur, err := mgr.Status(st.Session)
		if err != nil {
			t.Fatal(err)
		}
		if cur.NowNs > 0 {
			return cur, sub
		}
		if time.Now().After(deadline) {
			t.Fatalf("session %s made no progress within 60s", st.Session)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAdmissionBudgetFIFO(t *testing.T) {
	mgr := service.New(service.Config{
		MaxSessions:   2,
		MaxWorkers:    2,
		ProgressEvery: simtime.Millisecond,
	})

	// A costs the whole budget and parks mid-run.
	a, subA := parkedSession(t, mgr, 2)
	defer subA.Close()
	if a.State != wire.StateRunning || a.Workers != 2 {
		t.Fatalf("session A %+v", a)
	}

	// B fits the session limit but not the worker budget: queued.
	subB := service.NewSubscriber(4096)
	defer subB.Close()
	b, err := mgr.Submit(flowSpec(), "", true, subB)
	if err != nil {
		t.Fatal(err)
	}
	if b.State != wire.StateQueued {
		t.Fatalf("session B admitted at %q, want queued (budget exhausted)", b.State)
	}

	// C could never run: its cost exceeds the entire budget.
	over := busySpec()
	over.Options.Shards = 3
	var berr *service.BudgetError
	if _, err := mgr.Submit(over, "", false, nil); !errors.As(err, &berr) {
		t.Fatalf("oversized submit: %v, want *BudgetError", err)
	}

	// Draining A's subscriber unparks it; on completion B runs.
	_, doneA := drainSession(t, subA, a.Session)
	if doneA.State != wire.StateDone {
		t.Fatalf("A finished %q (%s)", doneA.State, doneA.Error)
	}
	recsB, doneB := drainSession(t, subB, b.Session)
	if doneB.State != wire.StateDone {
		t.Fatalf("B finished %q (%s)", doneB.State, doneB.Error)
	}
	assertRecordsEqual(t, "B after queueing", recsB, oneShotRecords(t, flowSpec()))
}

func TestQueueFull(t *testing.T) {
	mgr := service.New(service.Config{
		MaxSessions:   1,
		MaxWorkers:    1,
		QueueLimit:    1,
		ProgressEvery: simtime.Millisecond,
	})
	a, subA := parkedSession(t, mgr, 1)
	defer subA.Close()

	if _, err := mgr.Submit(flowSpec(), "", false, nil); err != nil {
		t.Fatalf("first queued submit: %v", err)
	}
	var qf *service.QueueFullError
	if _, err := mgr.Submit(flowSpec(), "", false, nil); !errors.As(err, &qf) {
		t.Fatalf("over-queue submit: %v, want *QueueFullError", err)
	}
	mgr.Cancel(a.Session)
	drainSession(t, subA, a.Session)
}

func TestCancelQueued(t *testing.T) {
	mgr := service.New(service.Config{
		MaxSessions:   1,
		MaxWorkers:    1,
		ProgressEvery: simtime.Millisecond,
	})
	a, subA := parkedSession(t, mgr, 1)
	defer subA.Close()

	subB := service.NewSubscriber(64)
	defer subB.Close()
	b, err := mgr.Submit(flowSpec(), "", false, subB)
	if err != nil {
		t.Fatal(err)
	}
	if b.State != wire.StateQueued {
		t.Fatalf("B %+v, want queued", b)
	}
	st, err := mgr.Cancel(b.Session)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != wire.StateCanceled {
		t.Fatalf("canceled queued session reports %q", st.State)
	}
	recs, done := drainSession(t, subB, b.Session)
	if done.State != wire.StateCanceled || len(recs) != 0 || done.Summary != nil {
		t.Fatalf("queued cancel: %d records, done %+v", len(recs), done)
	}
	mgr.Cancel(a.Session)
	drainSession(t, subA, a.Session)
}

func TestCancelRunningPartialResults(t *testing.T) {
	mgr := service.New(service.Config{ProgressEvery: simtime.Millisecond})
	a, subA := parkedSession(t, mgr, 1)
	defer subA.Close()

	if _, err := mgr.Cancel(a.Session); err != nil {
		t.Fatal(err)
	}
	recs, done := drainSession(t, subA, a.Session)
	if done.State != wire.StateCanceled {
		t.Fatalf("done %+v, want canceled", done)
	}
	// Partial but consistent: the summary reflects exactly the streamed
	// records and the counters at the stop instant.
	if done.Summary == nil || done.Summary.Records != len(recs) {
		t.Fatalf("summary %+v, streamed %d records", done.Summary, len(recs))
	}
	full := oneShotRecords(t, busySpec())
	if len(recs) >= len(full) {
		t.Fatalf("cancel was not mid-run: %d records streamed of %d total", len(recs), len(full))
	}
	// A cancelled engine finalizes its in-flight flows at the stop instant
	// ("running"/"waiting" outcomes) after the normally-finalized ones.
	// Everything before that flush must match the one-shot run record for
	// record.
	settled := len(recs)
	for settled > 0 && (recs[settled-1].Outcome == "running" || recs[settled-1].Outcome == "waiting") {
		settled--
	}
	assertRecordsEqual(t, "canceled prefix", recs[:settled], full[:settled])
}

func TestRetireGuards(t *testing.T) {
	mgr := service.New(service.Config{ProgressEvery: simtime.Millisecond})
	a, subA := parkedSession(t, mgr, 1)
	defer subA.Close()

	var nr *service.NotRetirableError
	if _, err := mgr.Retire(a.Session); !errors.As(err, &nr) {
		t.Fatalf("retire running: %v, want *NotRetirableError", err)
	}
	var nf *service.NotFoundError
	if _, err := mgr.Retire("s999"); !errors.As(err, &nf) {
		t.Fatalf("retire unknown: %v, want *NotFoundError", err)
	}
	mgr.Cancel(a.Session)
	drainSession(t, subA, a.Session)
	if _, err := mgr.Retire(a.Session); err != nil {
		t.Fatalf("retire canceled session: %v", err)
	}
}

func TestDrainCancelsEverything(t *testing.T) {
	mgr := service.New(service.Config{
		MaxSessions:   1,
		MaxWorkers:    1,
		ProgressEvery: simtime.Millisecond,
	})
	a, subA := parkedSession(t, mgr, 1)
	defer subA.Close()
	subB := service.NewSubscriber(64)
	defer subB.Close()
	b, err := mgr.Submit(flowSpec(), "", false, subB)
	if err != nil {
		t.Fatal(err)
	}

	// Drain concurrently with consumers: the parked session unparks into
	// its watcher, which must see partial results and Done.
	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		drained <- mgr.Drain(ctx)
	}()

	_, doneB := drainSession(t, subB, b.Session)
	if doneB.State != wire.StateCanceled {
		t.Fatalf("queued B drained to %q", doneB.State)
	}
	recsA, doneA := drainSession(t, subA, a.Session)
	if doneA.State != wire.StateCanceled || doneA.Summary == nil || doneA.Summary.Records != len(recsA) {
		t.Fatalf("running A drained to %+v with %d records", doneA, len(recsA))
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}

	if _, err := mgr.Submit(flowSpec(), "", false, nil); !errors.Is(err, service.ErrDraining) {
		t.Fatalf("submit while draining: %v, want ErrDraining", err)
	}
}

func TestSubmitBadSpec(t *testing.T) {
	mgr := service.New(service.Config{})
	spec := flowSpec()
	spec.Workload.Demands[0].Dst = "nonexistent"
	var serr *wire.SpecError
	if _, err := mgr.Submit(spec, "", false, nil); !errors.As(err, &serr) {
		t.Fatalf("bad spec: %v, want *wire.SpecError", err)
	}
	bad := flowSpec()
	bad.Options.Fidelity = "quantum"
	var berr *horse.BuildError
	if _, err := mgr.Submit(bad, "", false, nil); !errors.As(err, &berr) {
		t.Fatalf("bad options: %v, want *horse.BuildError", err)
	}
	if got := mgr.List(); len(got) != 0 {
		t.Fatalf("rejected submissions left session state: %+v", got)
	}
}
