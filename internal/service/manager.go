// Package service is the session layer of horsed, the simulation-as-a-
// service daemon: a SessionManager that multiplexes many concurrent
// named simulation sessions over one machine-wide resource budget, and a
// wire Server (server.go) fronting it with the versioned horse-wire
// protocol.
//
// Every session is a full simulation described by a serializable spec
// (api/wire.SessionSpec). Submit builds the engine eagerly through the
// façade bridge — a bad spec fails synchronously with the builder's
// typed validation errors, before any session state exists. Admitted
// sessions run under admission control: at most MaxSessions run
// concurrently, their summed worker cost stays within the MaxWorkers
// budget (a runner.Budget), and excess submissions queue FIFO up to
// QueueLimit, beyond which Submit rejects with a typed error. Sessions
// are inspected (Status/List), cancelled mid-run — cancellation flows
// into the engine's context-aware Run, which returns partial-but-
// consistent results — and retired once terminal.
//
// Results ride the engine's streaming surfaces: progress reports and,
// for streamed sessions, every finalized flow record are pushed to
// subscribers in exact engine order (flow-engine sessions stay O(1)
// memory end to end — records go from the engine's record sink straight
// to the wire, never retained server-side). Non-streamed sessions retain
// their collector and replay records to any later watcher.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"horse"
	"horse/api/wire"
	"horse/internal/metrics"
	"horse/internal/runner"
	"horse/internal/simtime"
	"horse/internal/stats"
)

// Config parameterizes a Manager. Zero values take defaults.
type Config struct {
	// MaxSessions bounds concurrently running sessions (default
	// GOMAXPROCS).
	MaxSessions int
	// MaxWorkers is the total worker budget running sessions may hold: a
	// session costs its OptionsSpec.Workers() (default GOMAXPROCS).
	// Sessions costing more than the whole budget are rejected outright.
	MaxWorkers int
	// QueueLimit bounds the FIFO admission queue (default 64).
	QueueLimit int
	// ProgressEvery is the virtual-time period of progress pushes
	// (default 100 ms).
	ProgressEvery simtime.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = runtime.GOMAXPROCS(0)
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = runtime.GOMAXPROCS(0)
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 64
	}
	if c.ProgressEvery <= 0 {
		c.ProgressEvery = 100 * simtime.Millisecond
	}
	return c
}

// Typed admission and lifecycle errors (the wire server maps each to its
// error code).
var (
	// ErrDraining rejects submissions during shutdown.
	ErrDraining = errors.New("service: draining, not accepting sessions")
)

// QueueFullError rejects a submission when the FIFO queue is at
// capacity.
type QueueFullError struct {
	Limit int
}

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("service: admission queue full (%d queued)", e.Limit)
}

// BudgetError rejects a session whose worker cost exceeds the entire
// budget — it could never be scheduled.
type BudgetError struct {
	Cost, Budget int
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("service: session needs %d workers, budget is %d", e.Cost, e.Budget)
}

// NotFoundError names an unknown session.
type NotFoundError struct {
	ID string
}

func (e *NotFoundError) Error() string { return fmt.Sprintf("service: no session %q", e.ID) }

// NotRetirableError rejects retiring a session that is still queued or
// running.
type NotRetirableError struct {
	ID, State string
}

func (e *NotRetirableError) Error() string {
	return fmt.Sprintf("service: session %q is %s; cancel it before retiring", e.ID, e.State)
}

// Manager is the session manager of the daemon. Create with New.
type Manager struct {
	cfg    Config
	budget *runner.Budget

	mu       sync.Mutex
	sessions map[string]*session
	order    []string // submission order, for List
	queue    []*session
	running  int
	draining bool
	seq      int
	wg       sync.WaitGroup
}

// New returns a Manager enforcing cfg's admission control.
func New(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	return &Manager{
		cfg:      cfg,
		budget:   runner.NewBudget(cfg.MaxWorkers),
		sessions: map[string]*session{},
	}
}

// Config returns the effective (defaulted) configuration.
func (m *Manager) Config() Config { return m.cfg }

// session is one managed simulation run.
type session struct {
	id       string
	name     string
	stream   bool
	cost     int
	fidelity string

	eng    horse.Engine
	until  simtime.Time
	ctx    context.Context
	cancel context.CancelFunc

	// Progress snapshot, written from the simulation goroutine.
	nowNs  atomic.Int64
	events atomic.Uint64

	// records counts sink-streamed records; touched only on the
	// simulation goroutine, read after Run returns.
	records int

	mu      sync.Mutex
	state   string
	err     error
	summary *wire.Summary
	col     *stats.Collector // retained results of non-streamed sessions
	subs    []*Subscriber
}

// Submit validates and admits one session. The engine is built eagerly —
// spec errors (typed *horse.BuildError / *wire.SpecError /
// *horse.ScenarioEventError) surface here, synchronously — then the
// session queues FIFO and starts as soon as it fits the budget. sub, if
// non-nil, subscribes to the session's pushes before it can start, so a
// streaming submitter sees every record.
func (m *Manager) Submit(spec *wire.SessionSpec, name string, stream bool, sub *Subscriber) (wire.SessionStatus, error) {
	cost := spec.Options.Workers()
	fid := spec.Options.Fidelity
	if fid == "" {
		fid = wire.FidelityFlow
	}

	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return wire.SessionStatus{}, ErrDraining
	}
	if cost > m.budget.Cap() {
		m.mu.Unlock()
		return wire.SessionStatus{}, &BudgetError{Cost: cost, Budget: m.budget.Cap()}
	}
	if len(m.queue) >= m.cfg.QueueLimit {
		m.mu.Unlock()
		return wire.SessionStatus{}, &QueueFullError{Limit: m.cfg.QueueLimit}
	}
	m.mu.Unlock()

	// Build outside the lock: engine construction does real work
	// (topology builders, trace generation) and must not serialize
	// against Status calls.
	s := &session{
		stream:   stream,
		cost:     cost,
		fidelity: fid,
		name:     name,
		state:    wire.StateQueued,
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	extra := []horse.Option{
		horse.WithProgressEvery(m.cfg.ProgressEvery, func(p horse.Progress) {
			s.nowNs.Store(int64(p.Now))
			s.events.Store(p.Events)
			s.publish(Push{Session: s.id, Event: wire.EventProgress,
				Progress: &wire.ProgressEvent{NowNs: int64(p.Now), Events: p.Events}})
		}),
	}
	if stream {
		extra = append(extra, horse.WithRecordSink(func(r horse.FlowRecord) {
			s.records++
			rec := wire.FromRecord(r)
			s.publish(Push{Session: s.id, Event: wire.EventRecord, Record: &rec})
		}))
	}
	eng, until, err := horse.NewFromSpec(spec, extra...)
	if err != nil {
		return wire.SessionStatus{}, err
	}
	s.eng, s.until = eng, until

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return wire.SessionStatus{}, ErrDraining
	}
	if len(m.queue) >= m.cfg.QueueLimit {
		return wire.SessionStatus{}, &QueueFullError{Limit: m.cfg.QueueLimit}
	}
	m.seq++
	s.id = fmt.Sprintf("s%d", m.seq)
	if sub != nil {
		s.subs = append(s.subs, sub)
	}
	m.sessions[s.id] = s
	m.order = append(m.order, s.id)
	m.queue = append(m.queue, s)
	m.schedule()
	return s.status(), nil
}

// schedule starts queued sessions while the head of the queue fits the
// budget. Strict FIFO: a large head session blocks smaller ones behind
// it, which keeps admission deterministic (no starvation reordering).
// Callers hold m.mu.
func (m *Manager) schedule() {
	for len(m.queue) > 0 && !m.draining {
		s := m.queue[0]
		if m.running >= m.cfg.MaxSessions || !m.budget.TryAcquire(s.cost) {
			return
		}
		m.queue = m.queue[1:]
		m.running++
		s.mu.Lock()
		s.state = wire.StateRunning
		s.mu.Unlock()
		m.wg.Add(1)
		go m.run(s)
	}
}

// run executes one session to completion and releases its budget.
func (m *Manager) run(s *session) {
	defer m.wg.Done()
	col, err := func() (col *stats.Collector, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("service: session %s panicked: %v", s.id, r)
			}
		}()
		return s.eng.Run(s.ctx, s.until)
	}()
	s.finalize(col, err)
	m.mu.Lock()
	m.running--
	m.budget.Release(s.cost)
	m.schedule()
	m.mu.Unlock()
}

// finalize moves a session to its terminal state, builds the summary,
// replays retained records to live watchers, and pushes Done.
func (s *session) finalize(col *stats.Collector, err error) {
	state := wire.StateDone
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		state = wire.StateCanceled
	default:
		state = wire.StateFailed
	}

	var summary *wire.Summary
	if col != nil {
		summary = &wire.Summary{Counters: wire.FromCounters(col.Counters())}
		if s.stream {
			summary.Records = s.records
		} else {
			summary.Records = len(col.Flows())
			if fcts := col.FCTs(); len(fcts) > 0 {
				d := wire.FromSummary(metrics.Summarize(fcts))
				summary.FCT = &d
			}
		}
	}

	s.mu.Lock()
	s.state = state
	s.err = err
	s.summary = summary
	if !s.stream {
		s.col = col
	}
	subs := s.subs
	s.subs = nil
	done := s.doneEventLocked()
	s.mu.Unlock()

	for _, sub := range subs {
		if sub.closed() {
			continue
		}
		if !s.stream && col != nil {
			for _, r := range col.Flows() {
				rec := wire.FromRecord(r)
				sub.send(Push{Session: s.id, Event: wire.EventRecord, Record: &rec})
			}
		}
		sub.send(Push{Session: s.id, Event: wire.EventDone, Done: done})
	}
}

// publish delivers a push to every live subscriber, in subscription
// order. Runs on the simulation goroutine (record sinks, progress
// hooks): delivery order per session is exactly engine order.
func (s *session) publish(p Push) {
	s.mu.Lock()
	subs := make([]*Subscriber, len(s.subs))
	copy(subs, s.subs)
	s.mu.Unlock()
	for _, sub := range subs {
		sub.send(p)
	}
}

// doneEventLocked builds the Done push of a terminal session. s.mu held.
func (s *session) doneEventLocked() *wire.DoneEvent {
	d := &wire.DoneEvent{State: s.state, Summary: s.summary}
	if s.err != nil {
		d.Error = s.err.Error()
	}
	return d
}

// status snapshots the wire view. Callers must not hold s.mu.
func (s *session) status() wire.SessionStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := wire.SessionStatus{
		Session:  s.id,
		Name:     s.name,
		State:    s.state,
		Fidelity: s.fidelity,
		Workers:  s.cost,
		Stream:   s.stream,
		NowNs:    s.nowNs.Load(),
		Events:   s.events.Load(),
		Summary:  s.summary,
	}
	if s.err != nil {
		st.Error = s.err.Error()
	}
	return st
}

func (m *Manager) lookup(id string) (*session, error) {
	m.mu.Lock()
	s := m.sessions[id]
	m.mu.Unlock()
	if s == nil {
		return nil, &NotFoundError{ID: id}
	}
	return s, nil
}

// Status returns one session's current state.
func (m *Manager) Status(id string) (wire.SessionStatus, error) {
	s, err := m.lookup(id)
	if err != nil {
		return wire.SessionStatus{}, err
	}
	return s.status(), nil
}

// List returns every session in submission order.
func (m *Manager) List() []wire.SessionStatus {
	m.mu.Lock()
	ss := make([]*session, 0, len(m.order))
	for _, id := range m.order {
		if s := m.sessions[id]; s != nil {
			ss = append(ss, s)
		}
	}
	m.mu.Unlock()
	out := make([]wire.SessionStatus, len(ss))
	for i, s := range ss {
		out[i] = s.status()
	}
	return out
}

// Cancel cancels a queued or running session: a queued one goes terminal
// immediately; a running one has its context cancelled, and goes
// terminal when the engine returns its partial-but-consistent collector.
// Cancelling a terminal session is a no-op. The returned status is the
// state as of the call (a running session may still report "running"
// while the engine winds down).
func (m *Manager) Cancel(id string) (wire.SessionStatus, error) {
	s, err := m.lookup(id)
	if err != nil {
		return wire.SessionStatus{}, err
	}
	// Dequeue if still queued; the session then finalizes here, without
	// ever having run.
	m.mu.Lock()
	dequeued := false
	for i, q := range m.queue {
		if q == s {
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			dequeued = true
			// The head may have been the blocker; sessions behind it can
			// be eligible now.
			m.schedule()
			break
		}
	}
	m.mu.Unlock()
	s.cancel()
	if dequeued {
		s.finalize(nil, context.Canceled)
	}
	return s.status(), nil
}

// Retire removes a terminal session (and its retained results) from the
// manager. Queued or running sessions must be cancelled first.
func (m *Manager) Retire(id string) (wire.SessionStatus, error) {
	s, err := m.lookup(id)
	if err != nil {
		return wire.SessionStatus{}, err
	}
	st := s.status()
	switch st.State {
	case wire.StateDone, wire.StateCanceled, wire.StateFailed:
	default:
		return wire.SessionStatus{}, &NotRetirableError{ID: id, State: st.State}
	}
	m.mu.Lock()
	delete(m.sessions, id)
	for i, oid := range m.order {
		if oid == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	m.mu.Unlock()
	return st, nil
}

// Watch subscribes sub to a session's pushes. A terminal session replays
// immediately: its retained records (non-streamed sessions), then Done.
// A queued or running session delivers live events from now on — to
// receive a streamed session's full record stream, subscribe at Submit.
func (m *Manager) Watch(id string, sub *Subscriber) (wire.SessionStatus, error) {
	s, err := m.lookup(id)
	if err != nil {
		return wire.SessionStatus{}, err
	}
	s.mu.Lock()
	switch s.state {
	case wire.StateDone, wire.StateCanceled, wire.StateFailed:
		col := s.col
		done := s.doneEventLocked()
		s.mu.Unlock()
		if col != nil {
			for _, r := range col.Flows() {
				rec := wire.FromRecord(r)
				sub.send(Push{Session: s.id, Event: wire.EventRecord, Record: &rec})
			}
		}
		sub.send(Push{Session: s.id, Event: wire.EventDone, Done: done})
	default:
		s.subs = append(s.subs, sub)
		s.mu.Unlock()
	}
	return s.status(), nil
}

// Drain stops admission, cancels every queued and running session, and
// waits (bounded by ctx) for in-flight sessions to finalize — watchers
// receive their partial results and Done pushes before Drain returns.
// The daemon calls this on SIGTERM.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	m.draining = true
	queued := m.queue
	m.queue = nil
	var runningIDs []*session
	for _, id := range m.order {
		if s := m.sessions[id]; s != nil {
			runningIDs = append(runningIDs, s)
		}
	}
	m.mu.Unlock()

	for _, s := range queued {
		s.cancel()
		s.finalize(nil, context.Canceled)
	}
	for _, s := range runningIDs {
		s.cancel()
	}

	finished := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
