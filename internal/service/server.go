package service

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"horse"
	"horse/api/wire"
)

// MaxFrameBytes bounds one newline-delimited request frame. Specs are
// compact (topologies ship as builder parameters, not graphs), so this
// is generous.
const MaxFrameBytes = 8 << 20

// Server fronts a Manager with the horse-wire protocol: newline-delimited
// JSON frames over any net.Listener (the daemon serves unix sockets and
// TCP). Each connection handshakes (Hello → Welcome), then issues
// requests; one Subscriber per connection carries the interleaved push
// streams of every session it watches.
type Server struct {
	mgr  *Manager
	name string // server identity string for the Welcome

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[*serverConn]struct{}
	closed    bool
	wg        sync.WaitGroup
}

// NewServer wraps mgr. name is the identity string sent in Welcome
// frames (e.g. "horsed/1.0").
func NewServer(mgr *Manager, name string) *Server {
	return &Server{
		mgr:       mgr,
		name:      name,
		listeners: map[net.Listener]struct{}{},
		conns:     map[*serverConn]struct{}{},
	}
}

// Manager returns the session manager the server fronts.
func (sv *Server) Manager() *Manager { return sv.mgr }

// Serve accepts connections on l until the listener closes (Shutdown
// closes every registered listener). It returns nil on a clean
// shutdown-induced close.
func (sv *Server) Serve(l net.Listener) error {
	sv.mu.Lock()
	if sv.closed {
		sv.mu.Unlock()
		l.Close()
		return errors.New("service: server closed")
	}
	sv.listeners[l] = struct{}{}
	sv.mu.Unlock()

	for {
		conn, err := l.Accept()
		if err != nil {
			sv.mu.Lock()
			delete(sv.listeners, l)
			closed := sv.closed
			sv.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		sv.mu.Lock()
		if sv.closed {
			sv.mu.Unlock()
			conn.Close()
			return nil
		}
		c := &serverConn{Conn: conn, pumpDone: make(chan struct{})}
		sv.conns[c] = struct{}{}
		sv.wg.Add(1)
		sv.mu.Unlock()
		go sv.handle(c)
	}
}

// Shutdown drains gracefully: stop accepting, drain the manager —
// running sessions are cancelled and their watchers receive partial
// results and Done pushes — flush every connection's pending pushes,
// then close the connections and wait for their handlers.
func (sv *Server) Shutdown(ctx context.Context) error {
	sv.mu.Lock()
	sv.closed = true
	for l := range sv.listeners {
		l.Close()
	}
	sv.mu.Unlock()

	err := sv.mgr.Drain(ctx)

	sv.mu.Lock()
	conns := make([]*serverConn, 0, len(sv.conns))
	for c := range sv.conns {
		conns = append(conns, c)
	}
	sv.mu.Unlock()
	for _, c := range conns {
		// After Drain every publisher has finalized, so closing the
		// subscriber flips its pump into flush mode: it writes the
		// buffered pushes (the Done events among them) and exits. Wait
		// for that before cutting the socket. A connection still in its
		// handshake has no pump and nothing to flush.
		if c.pumpStarted.Load() {
			c.sub.Close()
			select {
			case <-c.pumpDone:
			case <-ctx.Done():
			}
		}
		c.Close()
	}

	done := make(chan struct{})
	go func() {
		sv.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
	}
	return err
}

// conn wraps one connection's write side and its subscriber pump.
type serverConn struct {
	net.Conn
	version string

	writeMu sync.Mutex // serializes response and event frames
	sub     *Subscriber
	// pumpStarted flips (with release semantics, after sub is set) when
	// the push pump starts; pumpDone closes when the pump has flushed and
	// exited — or, for pumpless connections, when the handler returns.
	pumpStarted atomic.Bool
	pumpDone    chan struct{}
}

func (c *serverConn) writeFrame(f *wire.Frame) error {
	f.V = c.version
	b, err := json.Marshal(f)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	_, err = c.Write(b)
	return err
}

func (c *serverConn) respondErr(id uint64, werr *wire.Error) error {
	return c.writeFrame(&wire.Frame{ID: id, Error: werr})
}

func (c *serverConn) respond(id uint64, result interface{}) error {
	b, err := json.Marshal(result)
	if err != nil {
		return c.respondErr(id, &wire.Error{Code: wire.CodeInternal, Message: err.Error()})
	}
	return c.writeFrame(&wire.Frame{ID: id, Result: b})
}

func (sv *Server) handle(c *serverConn) {
	defer sv.wg.Done()
	defer func() {
		if c.sub != nil {
			c.sub.Close()
		}
		if !c.pumpStarted.Load() {
			close(c.pumpDone)
		}
		c.Close()
		sv.mu.Lock()
		delete(sv.conns, c)
		sv.mu.Unlock()
	}()

	sc := bufio.NewScanner(c.Conn)
	sc.Buffer(make([]byte, 64<<10), MaxFrameBytes)

	// Handshake: the first frame must be Hello. The Welcome pins the
	// version stamped on every subsequent frame.
	if !sc.Scan() {
		return
	}
	f, werr := decodeFrame(sc.Bytes())
	if werr != nil {
		c.respondErr(0, werr)
		return
	}
	if f.Method != wire.MethodHello {
		c.respondErr(f.ID, &wire.Error{Code: wire.CodeBadRequest,
			Message: fmt.Sprintf("first frame must be %s, got %q", wire.MethodHello, f.Method)})
		return
	}
	var hello wire.HelloParams
	if err := json.Unmarshal(f.Params, &hello); err != nil {
		c.respondErr(f.ID, &wire.Error{Code: wire.CodeBadRequest, Message: "bad Hello params: " + err.Error()})
		return
	}
	v, err := wire.Negotiate(hello.Versions, wire.Versions)
	if err != nil {
		c.respondErr(f.ID, &wire.Error{Code: wire.CodeVersion, Message: err.Error()})
		return
	}
	c.version = v
	if c.respond(f.ID, wire.Welcome{Version: v, Server: sv.name}) != nil {
		return
	}

	// Push pump: one subscriber carries every watched session's events,
	// written as event frames interleaved with responses. When the
	// subscriber closes, the pump flushes whatever is still buffered
	// (shutdown relies on this to deliver the final Done events) before
	// signalling pumpDone.
	c.sub = NewSubscriber(256)
	c.pumpStarted.Store(true)
	go func() {
		defer close(c.pumpDone)
		for {
			select {
			case p := <-c.sub.C():
				if c.writeFrame(pushFrame(p)) != nil {
					c.sub.Close()
					return
				}
			case <-c.sub.quit:
				for {
					select {
					case p := <-c.sub.C():
						if c.writeFrame(pushFrame(p)) != nil {
							return
						}
					default:
						return
					}
				}
			}
		}
	}()

	for sc.Scan() {
		f, werr := decodeFrame(sc.Bytes())
		if werr != nil {
			c.respondErr(0, werr)
			return
		}
		if err := sv.dispatch(c, f); err != nil {
			return
		}
	}
	// Scanner stops on EOF (client went away) or oversized frames.
	if err := sc.Err(); errors.Is(err, bufio.ErrTooLong) {
		c.respondErr(0, &wire.Error{Code: wire.CodeBadRequest,
			Message: fmt.Sprintf("frame exceeds %d bytes", MaxFrameBytes)})
	}
}

func decodeFrame(line []byte) (*wire.Frame, *wire.Error) {
	var f wire.Frame
	if err := json.Unmarshal(line, &f); err != nil {
		return nil, &wire.Error{Code: wire.CodeBadRequest, Message: "bad frame: " + err.Error()}
	}
	if f.ID == 0 || f.Method == "" {
		return nil, &wire.Error{Code: wire.CodeBadRequest, Message: "request frames need id and method"}
	}
	return &f, nil
}

func pushFrame(p Push) *wire.Frame {
	f := &wire.Frame{Event: p.Event, Session: p.Session}
	var payload interface{}
	switch p.Event {
	case wire.EventProgress:
		payload = p.Progress
	case wire.EventRecord:
		payload = p.Record
	case wire.EventDone:
		payload = p.Done
	}
	f.Data, _ = json.Marshal(payload)
	return f
}

// dispatch handles one request frame. A returned error tears the
// connection down (write failure); protocol-level failures go back as
// error responses and keep the connection alive.
func (sv *Server) dispatch(c *serverConn, f *wire.Frame) error {
	switch f.Method {
	case wire.MethodHello:
		return c.respondErr(f.ID, &wire.Error{Code: wire.CodeBadRequest, Message: "already greeted"})

	case wire.MethodSubmit:
		var p wire.SubmitParams
		if err := json.Unmarshal(f.Params, &p); err != nil {
			return c.respondErr(f.ID, &wire.Error{Code: wire.CodeBadRequest, Message: "bad Submit params: " + err.Error()})
		}
		var sub *Subscriber
		if p.Stream {
			sub = c.sub
		}
		st, err := sv.mgr.Submit(&p.Spec, p.Name, p.Stream, sub)
		if err != nil {
			return c.respondErr(f.ID, toWireError(err))
		}
		return c.respond(f.ID, st)

	case wire.MethodStatus:
		return sv.sessionCall(c, f, sv.mgr.Status)

	case wire.MethodList:
		return c.respond(f.ID, wire.ListResult{Sessions: sv.mgr.List()})

	case wire.MethodCancel:
		return sv.sessionCall(c, f, sv.mgr.Cancel)

	case wire.MethodRetire:
		return sv.sessionCall(c, f, sv.mgr.Retire)

	case wire.MethodWatch:
		return sv.sessionCall(c, f, func(id string) (wire.SessionStatus, error) {
			return sv.mgr.Watch(id, c.sub)
		})

	default:
		return c.respondErr(f.ID, &wire.Error{Code: wire.CodeBadRequest,
			Message: fmt.Sprintf("unknown method %q", f.Method)})
	}
}

func (sv *Server) sessionCall(c *serverConn, f *wire.Frame, fn func(string) (wire.SessionStatus, error)) error {
	var p wire.SessionParams
	if err := json.Unmarshal(f.Params, &p); err != nil {
		return c.respondErr(f.ID, &wire.Error{Code: wire.CodeBadRequest, Message: "bad session params: " + err.Error()})
	}
	st, err := fn(p.Session)
	if err != nil {
		return c.respondErr(f.ID, toWireError(err))
	}
	return c.respond(f.ID, st)
}

// toWireError maps manager and builder errors onto wire error codes, so
// clients can branch without parsing messages.
func toWireError(err error) *wire.Error {
	var (
		buildErr     *horse.BuildError
		specErr      *wire.SpecError
		eventErr     *horse.ScenarioEventError
		queueFull    *QueueFullError
		budgetErr    *BudgetError
		notFound     *NotFoundError
		notRetirable *NotRetirableError
	)
	switch {
	case errors.As(err, &buildErr), errors.As(err, &specErr), errors.As(err, &eventErr):
		return &wire.Error{Code: wire.CodeBadSpec, Message: err.Error()}
	case errors.Is(err, ErrDraining):
		return &wire.Error{Code: wire.CodeDraining, Message: err.Error()}
	case errors.As(err, &queueFull):
		return &wire.Error{Code: wire.CodeQueueFull, Message: err.Error()}
	case errors.As(err, &budgetErr):
		return &wire.Error{Code: wire.CodeTooLarge, Message: err.Error()}
	case errors.As(err, &notFound):
		return &wire.Error{Code: wire.CodeNotFound, Message: err.Error()}
	case errors.As(err, &notRetirable):
		return &wire.Error{Code: wire.CodeNotRetirable, Message: err.Error()}
	default:
		return &wire.Error{Code: wire.CodeInternal, Message: err.Error()}
	}
}
