package service_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"horse/api/wire"
	"horse/internal/service"
	"horse/internal/simtime"
)

// mixedSpecs is one spec per fidelity/sharding shape the manager must
// multiplex: flow, sharded flow, packet, sharded packet, and hybrid.
// Every spec is deterministic, so daemon-run records must be
// byte-identical to a one-shot run of the same spec.
func mixedSpecs() []*wire.SessionSpec {
	base := func() *wire.SessionSpec {
		return &wire.SessionSpec{
			Topology: wire.TopoSpec{Kind: wire.TopoLeafSpine, Leaves: 2, Spines: 2, Hosts: 2},
			Workload: wire.WorkloadSpec{Poisson: &wire.PoissonSpec{
				Seed: 5, Lambda: 200, HorizonNs: int64(2 * simtime.Second),
				Size: wire.SizeSpec{Kind: wire.SizeFixed, Bits: 4e5}, TCPFraction: 0.5,
			}},
			Options: wire.OptionsSpec{
				Controller: []wire.AppSpec{{Kind: wire.AppProactiveMAC}},
				Miss:       "controller",
			},
			UntilNs: int64(20 * simtime.Second),
		}
	}
	flow := base()

	flowSharded := base()
	flowSharded.Options.Shards = 2

	packet := base()
	packet.Options.Fidelity = wire.FidelityPacket
	packet.Workload.Poisson.Lambda = 50 // packet-level events are ~1000x denser

	packetSharded := base()
	packetSharded.Options.Fidelity = wire.FidelityPacket
	packetSharded.Options.Shards = 2
	packetSharded.Workload.Poisson.Lambda = 50

	hybrid := base()
	hybrid.Options.Fidelity = wire.FidelityHybrid
	pf := 0.5
	hybrid.Options.PacketFraction = &pf
	hybrid.Workload.Poisson.Lambda = 100

	return []*wire.SessionSpec{flow, flowSharded, packet, packetSharded, hybrid}
}

// TestConcurrentSessionsParity drives many concurrent sessions of mixed
// fidelity through one manager — with mid-run cancels and retires in the
// mix — and asserts every completed session's records are byte-identical
// to a one-shot run of the same spec. Run it under -race: it is the
// session layer's interleaving stress test.
func TestConcurrentSessionsParity(t *testing.T) {
	specs := mixedSpecs()

	// One-shot baselines, computed up front (sequentially, for clean
	// attribution if a spec itself is broken).
	want := make([][]wire.Record, len(specs))
	for i, spec := range specs {
		want[i] = oneShotRecords(t, spec)
		if len(want[i]) == 0 {
			t.Fatalf("spec %d produced no records", i)
		}
	}

	mgr := service.New(service.Config{
		MaxSessions:   3,
		MaxWorkers:    4,
		ProgressEvery: 10 * simtime.Millisecond,
	})

	var wg sync.WaitGroup
	errc := make(chan error, 2*len(specs)+2)

	// Parity clients: submit, stream, compare.
	for round := 0; round < 2; round++ {
		for i, spec := range specs {
			wg.Add(1)
			go func(round, i int, spec *wire.SessionSpec) {
				defer wg.Done()
				sub := service.NewSubscriber(4096)
				defer sub.Close()
				label := fmt.Sprintf("round %d spec %d", round, i)
				st, err := mgr.Submit(spec, label, true, sub)
				if err != nil {
					errc <- fmt.Errorf("%s: submit: %w", label, err)
					return
				}
				recs, done := drainSession(t, sub, st.Session)
				if done.State != wire.StateDone {
					errc <- fmt.Errorf("%s: finished %q (%s)", label, done.State, done.Error)
					return
				}
				if len(recs) != len(want[i]) {
					errc <- fmt.Errorf("%s: %d records, one-shot %d", label, len(recs), len(want[i]))
					return
				}
				for j := range recs {
					if recs[j] != want[i][j] {
						errc <- fmt.Errorf("%s: record %d differs:\n daemon  %+v\n one-shot %+v",
							label, j, recs[j], want[i][j])
						return
					}
				}
				// Retire concurrently with everything else still running.
				if _, err := mgr.Retire(st.Session); err != nil {
					errc <- fmt.Errorf("%s: retire: %w", label, err)
				}
			}(round, i, spec)
		}
	}

	// Chaos clients: submit long sessions and cancel them mid-run, then
	// retire. Their Done must still be consistent (canceled, summary
	// matching the streamed records).
	for k := 0; k < 2; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			sub := service.NewSubscriber(4096)
			defer sub.Close()
			spec := busySpec()
			st, err := mgr.Submit(spec, fmt.Sprintf("chaos %d", k), true, sub)
			if err != nil {
				errc <- fmt.Errorf("chaos %d: submit: %w", k, err)
				return
			}
			time.Sleep(time.Duration(5+10*k) * time.Millisecond)
			if _, err := mgr.Cancel(st.Session); err != nil {
				errc <- fmt.Errorf("chaos %d: cancel: %w", k, err)
				return
			}
			recs, done := drainSession(t, sub, st.Session)
			switch done.State {
			case wire.StateCanceled, wire.StateDone: // done if the cancel raced completion
			default:
				errc <- fmt.Errorf("chaos %d: finished %q (%s)", k, done.State, done.Error)
				return
			}
			// Canceled while queued → never ran, no summary, no records.
			// Otherwise the summary must match the streamed records exactly.
			if done.Summary == nil {
				if len(recs) != 0 {
					errc <- fmt.Errorf("chaos %d: %d records but no summary", k, len(recs))
					return
				}
			} else if done.Summary.Records != len(recs) {
				errc <- fmt.Errorf("chaos %d: summary %+v does not match %d streamed records",
					k, done.Summary, len(recs))
				return
			}
			if _, err := mgr.Retire(st.Session); err != nil {
				errc <- fmt.Errorf("chaos %d: retire: %w", k, err)
			}
		}(k)
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if t.Failed() {
		return
	}
	if got := mgr.List(); len(got) != 0 {
		t.Fatalf("all sessions retired, but %d remain: %+v", len(got), got)
	}
}
