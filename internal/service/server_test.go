package service_test

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"horse/api/wire"
	"horse/internal/service"
	"horse/internal/simtime"
)

// startServer runs a wire server on a unix socket and returns its
// address. Everything is torn down with the test.
func startServer(t *testing.T, cfg service.Config) string {
	t.Helper()
	// t.TempDir can exceed the unix socket path limit; use a short one.
	dir, err := os.MkdirTemp("", "horsed")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	path := filepath.Join(dir, "s.sock")
	l, err := net.Listen("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	srv := service.NewServer(service.New(cfg), "horsed-test")
	served := make(chan error, 1)
	go func() { served <- srv.Serve(l) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-served; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return path
}

func dialTest(t *testing.T, path string) *wire.Client {
	t.Helper()
	c, err := wire.Dial("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestServerStreamedSubmitParity(t *testing.T) {
	path := startServer(t, service.Config{})
	c := dialTest(t, path)
	if c.Version() != wire.V1 || c.Server() != "horsed-test" {
		t.Fatalf("handshake: version %q server %q", c.Version(), c.Server())
	}

	st, stream, err := c.Submit(wire.SubmitParams{Name: "e2e", Spec: *flowSpec(), Stream: true})
	if err != nil {
		t.Fatal(err)
	}
	if stream == nil {
		t.Fatal("streamed submit returned no stream")
	}
	var recs []wire.Record
	done, err := stream.Drain(nil, func(r wire.Record) { recs = append(recs, r) })
	if err != nil {
		t.Fatal(err)
	}
	if done.State != wire.StateDone {
		t.Fatalf("done %+v", done)
	}
	// The wire-delivered records must be byte-identical to a one-shot
	// in-process run of the same spec.
	assertRecordsEqual(t, "wire stream", recs, oneShotRecords(t, flowSpec()))

	got, err := c.Status(st.Session)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != wire.StateDone || got.Name != "e2e" || got.Summary == nil {
		t.Fatalf("status %+v", got)
	}
	list, err := c.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Session != st.Session {
		t.Fatalf("list %+v", list)
	}
	if _, err := c.Retire(st.Session); err != nil {
		t.Fatal(err)
	}
}

func TestServerWatchReplay(t *testing.T) {
	path := startServer(t, service.Config{})
	c := dialTest(t, path)

	st, stream, err := c.Submit(wire.SubmitParams{Spec: *flowSpec()})
	if err != nil {
		t.Fatal(err)
	}
	if stream != nil {
		t.Fatal("non-streamed submit returned a stream")
	}
	waitTerminal(t, c, st.Session)

	// Watch replays the retained records — from a second connection too.
	c2 := dialTest(t, path)
	for round, cl := range []*wire.Client{c, c2} {
		_, stream, err := cl.Watch(st.Session)
		if err != nil {
			t.Fatal(err)
		}
		var recs []wire.Record
		done, err := stream.Drain(nil, func(r wire.Record) { recs = append(recs, r) })
		if err != nil {
			t.Fatal(err)
		}
		if done.State != wire.StateDone {
			t.Fatalf("round %d: done %+v", round, done)
		}
		assertRecordsEqual(t, "watch replay", recs, oneShotRecords(t, flowSpec()))
	}
}

func waitTerminal(t *testing.T, c *wire.Client, session string) wire.SessionStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err := c.Status(session)
		if err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case wire.StateDone, wire.StateCanceled, wire.StateFailed:
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("session %s still %s after 60s", session, st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestServerCancelMidRun(t *testing.T) {
	path := startServer(t, service.Config{ProgressEvery: simtime.Millisecond})
	c := dialTest(t, path)

	st, stream, err := c.Submit(wire.SubmitParams{Spec: *busySpec(), Stream: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cancel(st.Session); err != nil {
		t.Fatal(err)
	}
	var recs []wire.Record
	done, err := stream.Drain(nil, func(r wire.Record) { recs = append(recs, r) })
	if err != nil {
		t.Fatal(err)
	}
	// Usually canceled; done only if the session outran the cancel.
	switch done.State {
	case wire.StateCanceled, wire.StateDone:
	default:
		t.Fatalf("done %+v", done)
	}
	if done.Summary == nil || done.Summary.Records != len(recs) {
		t.Fatalf("summary %+v does not match %d streamed records", done.Summary, len(recs))
	}
}

func TestServerErrorCodes(t *testing.T) {
	path := startServer(t, service.Config{})
	c := dialTest(t, path)

	expectCode := func(err error, code string) {
		t.Helper()
		var werr *wire.Error
		if !errors.As(err, &werr) {
			t.Fatalf("error %v is not a *wire.Error", err)
		}
		if werr.Code != code {
			t.Fatalf("error code %q (%s), want %q", werr.Code, werr.Message, code)
		}
	}

	bad := flowSpec()
	bad.Workload.Demands[0].Dst = "nowhere"
	_, _, err := c.Submit(wire.SubmitParams{Spec: *bad})
	expectCode(err, wire.CodeBadSpec)

	_, err = c.Status("s999")
	expectCode(err, wire.CodeNotFound)

	err = c.Call("Explode", struct{}{}, nil)
	expectCode(err, wire.CodeBadRequest)

	over := flowSpec()
	over.Options.Shards = 1 << 20
	_, _, err = c.Submit(wire.SubmitParams{Spec: *over})
	expectCode(err, wire.CodeTooLarge)
}

// TestServerVersionNegotiation speaks the handshake by hand: an
// incompatible client must be rejected with a version-mismatch error.
func TestServerVersionNegotiation(t *testing.T) {
	path := startServer(t, service.Config{})
	conn, err := net.Dial("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	params, _ := json.Marshal(wire.HelloParams{Versions: []string{"horse-wire/v0"}})
	frame, _ := json.Marshal(wire.Frame{ID: 1, Method: wire.MethodHello, Params: params})
	if _, err := conn.Write(append(frame, '\n')); err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(conn).ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	var resp wire.Frame
	if err := json.Unmarshal(line, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Error == nil || resp.Error.Code != wire.CodeVersion {
		t.Fatalf("response %+v, want %s error", resp, wire.CodeVersion)
	}
}

// TestServerShutdownDrains verifies graceful drain: a running streamed
// session ends with a canceled Done carrying partial-but-consistent
// results, and Serve returns cleanly.
func TestServerShutdownDrains(t *testing.T) {
	dir, err := os.MkdirTemp("", "horsed")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	pathSock := filepath.Join(dir, "s.sock")
	l, err := net.Listen("unix", pathSock)
	if err != nil {
		t.Fatal(err)
	}
	srv := service.NewServer(service.New(service.Config{ProgressEvery: simtime.Millisecond}), "horsed-test")
	served := make(chan error, 1)
	go func() { served <- srv.Serve(l) }()

	c, err := wire.Dial("unix", pathSock)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, stream, err := c.Submit(wire.SubmitParams{Spec: *busySpec(), Stream: true})
	if err != nil {
		t.Fatal(err)
	}

	shutdown := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		shutdown <- srv.Shutdown(ctx)
	}()

	var recs []wire.Record
	done, err := stream.Drain(nil, func(r wire.Record) { recs = append(recs, r) })
	if err != nil {
		t.Fatal(err)
	}
	switch done.State {
	case wire.StateCanceled, wire.StateDone:
	default:
		t.Fatalf("drained session finished %q (%s)", done.State, done.Error)
	}
	if done.Summary == nil || done.Summary.Records != len(recs) {
		t.Fatalf("summary %+v does not match %d streamed records", done.Summary, len(recs))
	}
	if err := <-shutdown; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-served; err != nil {
		t.Fatalf("serve: %v", err)
	}

	// A draining (now closed) server accepts no new connections.
	if _, err := net.Dial("unix", pathSock); err == nil {
		t.Fatal("dial succeeded after shutdown")
	}
}
