package simtime

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimeAdd(t *testing.T) {
	cases := []struct {
		t    Time
		d    Duration
		want Time
	}{
		{0, Second, Time(Second)},
		{Time(Second), -Duration(Second), 0},
		{0, Forever, Never},
		{Never, Second, Never},
		{Time(math.MaxInt64 - 1), 10, Never}, // overflow saturates
	}
	for _, c := range cases {
		if got := c.t.Add(c.d); got != c.want {
			t.Errorf("%v.Add(%v) = %v, want %v", c.t, c.d, got, c.want)
		}
	}
}

func TestBeforeAfterSub(t *testing.T) {
	a, b := Time(10), Time(20)
	if !a.Before(b) || b.Before(a) || a.Before(a) {
		t.Error("Before misbehaves")
	}
	if !b.After(a) || a.After(b) {
		t.Error("After misbehaves")
	}
	if b.Sub(a) != 10 {
		t.Errorf("Sub = %d, want 10", b.Sub(a))
	}
}

func TestFromSeconds(t *testing.T) {
	if FromSeconds(1.5) != Duration(1500*Millisecond) {
		t.Errorf("FromSeconds(1.5) = %v", FromSeconds(1.5))
	}
	if FromSeconds(math.Inf(1)) != Forever {
		t.Error("FromSeconds(+Inf) should be Forever")
	}
	if FromSeconds(math.NaN()) != Forever {
		t.Error("FromSeconds(NaN) should be Forever")
	}
	if FromSeconds(1e40) != Forever {
		t.Error("huge seconds should saturate")
	}
}

func TestTransferTime(t *testing.T) {
	// 1 Gbit at 1 Gbps = 1 second.
	if got := TransferTime(1e9, 1e9); got != Duration(Second) {
		t.Errorf("TransferTime = %v, want 1s", got)
	}
	if TransferTime(100, 0) != Forever {
		t.Error("zero rate should be Forever")
	}
	if TransferTime(0, 1e9) != 0 {
		t.Error("zero bits should be instant")
	}
	if TransferTime(-5, 1e9) != Forever {
		t.Error("negative bits should be Forever")
	}
}

func TestBitsTransferred(t *testing.T) {
	if got := BitsTransferred(1e9, Duration(Second)); got != 1e9 {
		t.Errorf("BitsTransferred = %g, want 1e9", got)
	}
	if BitsTransferred(1e9, -Duration(Second)) != 0 {
		t.Error("negative duration should transfer nothing")
	}
	if !math.IsInf(BitsTransferred(1, Forever), 1) {
		t.Error("Forever should transfer infinite bits")
	}
}

func TestStringFormats(t *testing.T) {
	if Never.String() != "never" {
		t.Errorf("Never = %q", Never.String())
	}
	if Forever.String() != "forever" {
		t.Errorf("Forever = %q", Forever.String())
	}
	if got := Duration(1500 * Microsecond).String(); got != "1.500ms" {
		t.Errorf("1.5ms prints as %q", got)
	}
	if got := Duration(250).String(); got != "250ns" {
		t.Errorf("250ns prints as %q", got)
	}
}

// Property: TransferTime and BitsTransferred are inverse within tolerance.
func TestTransferRoundTrip(t *testing.T) {
	prop := func(bitsRaw, rateRaw uint32) bool {
		bits := float64(bitsRaw%1000000) + 1
		rate := float64(rateRaw%1000000) + 1
		d := TransferTime(bits, rate)
		back := BitsTransferred(rate, d)
		return math.Abs(back-bits) < bits*1e-6+1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
