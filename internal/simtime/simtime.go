// Package simtime provides the virtual-clock primitives used by the Horse
// simulator. All simulated timestamps are nanoseconds from the start of the
// simulation, held in an int64. The package deliberately mirrors a subset of
// the standard library's time API so simulator code reads naturally, while
// keeping virtual time a distinct type from wall-clock time.
package simtime

import (
	"fmt"
	"math"
)

// Time is an instant in virtual time, in nanoseconds since the start of the
// simulation. The zero Time is the simulation epoch.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
)

// Never is a sentinel Time beyond any reachable simulation instant. It is
// used for "no deadline" bookkeeping (e.g. flows with no hard timeout).
const Never Time = math.MaxInt64

// Forever is a sentinel Duration representing an unbounded span.
const Forever Duration = math.MaxInt64

// Add returns t+d. Additions that would overflow saturate at Never.
func (t Time) Add(d Duration) Time {
	if d == Forever || t == Never {
		return Never
	}
	s := t + Time(d)
	if d > 0 && s < t {
		return Never
	}
	return s
}

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// Seconds returns the time as a floating-point number of seconds since the
// simulation epoch.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the instant as seconds with millisecond precision.
func (t Time) String() string {
	if t == Never {
		return "never"
	}
	return fmt.Sprintf("%.6fs", t.Seconds())
}

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Milliseconds returns the duration as a floating-point number of ms.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// String formats the duration in the most natural unit.
func (d Duration) String() string {
	switch {
	case d == Forever:
		return "forever"
	case d >= Second || d <= -Second:
		return fmt.Sprintf("%.6fs", d.Seconds())
	case d >= Millisecond || d <= -Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	case d >= Microsecond || d <= -Microsecond:
		return fmt.Sprintf("%.3fµs", float64(d)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

// FromSeconds converts a floating-point number of seconds to a Duration,
// saturating at Forever for non-finite or overflowing values.
func FromSeconds(s float64) Duration {
	if math.IsInf(s, 1) || math.IsNaN(s) {
		return Forever
	}
	ns := s * float64(Second)
	if ns >= float64(math.MaxInt64) {
		return Forever
	}
	if ns <= float64(math.MinInt64) {
		return Duration(math.MinInt64)
	}
	return Duration(ns)
}

// AtSeconds converts a floating-point number of seconds since the epoch to a
// Time, saturating at Never.
func AtSeconds(s float64) Time {
	d := FromSeconds(s)
	if d == Forever {
		return Never
	}
	return Time(d)
}

// TransferTime returns how long moving `bits` bits at `rateBps` bits/second
// takes. A non-positive rate yields Forever (the transfer never completes).
func TransferTime(bits float64, rateBps float64) Duration {
	if rateBps <= 0 || bits < 0 {
		return Forever
	}
	if bits == 0 {
		return 0
	}
	return FromSeconds(bits / rateBps)
}

// BitsTransferred returns the number of bits a flow at rateBps moves in d.
func BitsTransferred(rateBps float64, d Duration) float64 {
	if d <= 0 || rateBps <= 0 {
		return 0
	}
	if d == Forever {
		return math.Inf(1)
	}
	return rateBps * d.Seconds()
}
