package eventq

// Adaptive is the Auto backend: it starts on the binary heap (the safe
// general-purpose choice) and watches the early push mix. If cancelable
// pushes — timer-class events armed through PushCancelable — make up at
// least half of the first adaptiveProbe pushes, the queue migrates once
// to the timing wheel, whose O(1) schedule/cancel wins exactly when the
// population is timer-dominated. Migration transplants live entries
// (including their cancellation nodes, so outstanding Handles stay valid)
// and preserves the FIFO sequence counter, so the pop sequence is
// byte-identical to either backend run alone.
//
// The decision depends only on the push sequence, never on wall-clock
// state, so Adaptive is as deterministic as the backends it wraps.
type Adaptive struct {
	q          Canceler
	total      uint64
	cancelable uint64
	decided    bool
}

// adaptiveProbe is how many pushes Adaptive observes before deciding.
const adaptiveProbe = 4096

// NewAdaptive returns an Auto queue, initially heap-backed.
func NewAdaptive() *Adaptive { return &Adaptive{q: NewHeap()} }

// Push schedules an event.
func (a *Adaptive) Push(ev Event) {
	a.q.Push(ev)
	a.observe(false)
}

// PushCancelable schedules an event and returns a cancellation handle.
func (a *Adaptive) PushCancelable(ev Event) Handle {
	h := a.q.PushCancelable(ev)
	a.observe(true)
	return h
}

// Cancel removes a scheduled event (see Canceler).
func (a *Adaptive) Cancel(h Handle) (Event, bool) { return a.q.Cancel(h) }

// Pop removes and returns the earliest live event, or nil if empty.
func (a *Adaptive) Pop() Event { return a.q.Pop() }

// Peek returns the earliest live event without removing it, or nil.
func (a *Adaptive) Peek() Event { return a.q.Peek() }

// Len returns the number of live queued events.
func (a *Adaptive) Len() int { return a.q.Len() }

func (a *Adaptive) observe(cancelable bool) {
	if a.decided {
		return
	}
	a.total++
	if cancelable {
		a.cancelable++
	}
	if a.total < adaptiveProbe {
		return
	}
	a.decided = true
	if a.cancelable*2 >= a.total {
		a.migrate()
	}
}

// migrate transplants the heap's live entries into a fresh wheel. Nodes
// move as-is (generation intact), so handles issued by the heap cancel
// correctly against the wheel; dead entries are dropped on the way.
func (a *Adaptive) migrate() {
	h := a.q.(*Heap)
	w := NewWheel()
	w.seq = h.seq
	for _, it := range h.items {
		if it.n != nil && it.n.dead {
			h.pool.put(it.n)
			continue
		}
		n := it.n
		if n == nil {
			n = w.pool.get()
			n.ev = it.ev
		}
		n.t = it.t
		n.key = it.key
		n.seq = it.seq
		n.prev, n.next = nil, nil
		w.place(n)
		w.n++
	}
	h.items = nil
	h.dead = 0
	a.q = w
}
