package eventq

import (
	"fmt"
	"math/rand"
	"testing"

	"horse/internal/simtime"
)

type keyedEvent struct {
	t   simtime.Time
	key uint64
	id  int
}

func (e *keyedEvent) Time() simtime.Time { return e.t }
func (e *keyedEvent) OrderKey() uint64   { return e.key }

// cancelers lists every backend in a stable order; all of them implement
// Canceler.
func cancelers() []struct {
	name string
	mk   func() Canceler
} {
	return []struct {
		name string
		mk   func() Canceler
	}{
		{"heap", func() Canceler { return NewHeap() }},
		{"calendar", func() Canceler { return NewCalendar() }},
		{"wheel", func() Canceler { return NewWheel() }},
		{"auto", func() Canceler { return NewAdaptive() }},
	}
}

func TestCancelSemantics(t *testing.T) {
	for _, be := range cancelers() {
		q := be.mk()
		a := &keyedEvent{t: 100, key: 1, id: 0}
		b := &keyedEvent{t: 200, key: 1, id: 1}
		c := &keyedEvent{t: 300, key: 1, id: 2}
		ha := q.PushCancelable(a)
		q.Push(b)
		hc := q.PushCancelable(c)
		if q.Len() != 3 {
			t.Fatalf("%s: Len = %d, want 3", be.name, q.Len())
		}
		if ev, ok := q.Cancel(ha); !ok || ev != a {
			t.Fatalf("%s: Cancel(a) = (%v, %v), want (a, true)", be.name, ev, ok)
		}
		if q.Len() != 2 {
			t.Fatalf("%s: Len after cancel = %d, want 2", be.name, q.Len())
		}
		if ev, ok := q.Cancel(ha); ok || ev != nil {
			t.Fatalf("%s: double Cancel = (%v, %v), want (nil, false)", be.name, ev, ok)
		}
		if ev, ok := q.Cancel(Handle{}); ok || ev != nil {
			t.Fatalf("%s: zero-handle Cancel = (%v, %v), want (nil, false)", be.name, ev, ok)
		}
		if got := q.Peek(); got != b {
			t.Fatalf("%s: Peek = %v, want b (a was cancelled)", be.name, got)
		}
		if got := q.Pop(); got != b {
			t.Fatalf("%s: Pop = %v, want b", be.name, got)
		}
		if got := q.Pop(); got != c {
			t.Fatalf("%s: Pop = %v, want c", be.name, got)
		}
		// c has fired: its handle is stale now.
		if ev, ok := q.Cancel(hc); ok || ev != nil {
			t.Fatalf("%s: Cancel after fire = (%v, %v), want (nil, false)", be.name, ev, ok)
		}
		if q.Len() != 0 || q.Pop() != nil {
			t.Fatalf("%s: queue not empty after drain", be.name)
		}
	}
}

// qop is one step of a scripted queue workload, shared by the randomized
// cross-backend test and the fuzz target.
type qop struct {
	kind byte   // 0 push, 1 push-cancelable, 2 cancel, 3 pop, 4 peek
	dt   int64  // firing-time offset from the drive clock (ns)
	key  uint64 // order key
	idx  int    // which recorded handle to cancel
}

// driveScript applies ops to a queue and returns a transcript of every
// observable result. Two backends are equivalent iff their transcripts
// match for every script.
func driveScript(q Queue, ops []qop) []string {
	c, _ := q.(Canceler)
	var out []string
	var handles []Handle
	clock := simtime.Time(0)
	id := 0
	for _, op := range ops {
		switch op.kind {
		case 0:
			q.Push(&keyedEvent{t: clock.Add(simtime.Duration(op.dt)), key: op.key, id: id})
			id++
		case 1:
			h := c.PushCancelable(&keyedEvent{t: clock.Add(simtime.Duration(op.dt)), key: op.key, id: id})
			handles = append(handles, h)
			id++
		case 2:
			if len(handles) > 0 {
				h := handles[op.idx%len(handles)]
				ev, ok := c.Cancel(h)
				evid := -1
				if ev != nil {
					evid = ev.(*keyedEvent).id
				}
				out = append(out, fmt.Sprintf("cancel %v %d", ok, evid))
			}
		case 3:
			ev := q.Pop()
			if ev == nil {
				out = append(out, "pop nil")
			} else {
				ke := ev.(*keyedEvent)
				clock = ke.t
				out = append(out, fmt.Sprintf("pop %d@%d", ke.id, int64(ke.t)))
			}
		case 4:
			ev := q.Peek()
			if ev == nil {
				out = append(out, "peek nil")
			} else {
				ke := ev.(*keyedEvent)
				out = append(out, fmt.Sprintf("peek %d@%d", ke.id, int64(ke.t)))
			}
		}
		out = append(out, fmt.Sprintf("len %d", q.Len()))
	}
	for {
		ev := q.Pop()
		if ev == nil {
			break
		}
		ke := ev.(*keyedEvent)
		out = append(out, fmt.Sprintf("drain %d@%d", ke.id, int64(ke.t)))
	}
	return out
}

func compareScripts(t *testing.T, ops []qop) {
	t.Helper()
	var ref []string
	refName := ""
	for _, be := range cancelers() {
		got := driveScript(be.mk(), ops)
		if ref == nil {
			ref, refName = got, be.name
			continue
		}
		n := len(ref)
		if len(got) < n {
			n = len(got)
		}
		for i := 0; i < n; i++ {
			if got[i] != ref[i] {
				t.Fatalf("%s diverges from %s at step %d: %q vs %q", be.name, refName, i, got[i], ref[i])
			}
		}
		if len(got) != len(ref) {
			t.Fatalf("%s transcript length %d != %s length %d (first %d steps agree)", be.name, len(got), refName, len(ref), n)
		}
	}
}

// TestCrossBackendCancelProperty drives every backend through randomized
// (time, key, cancel) workloads and requires transcript-identical
// behavior: same pop sequence, same Len after every op, same cancel
// outcomes. Time offsets span every wheel level and the overflow list.
// Offsets are never negative: the calendar queue assumes pushes at or
// after the dequeue cursor (as every engine guarantees); past-time
// inserts are covered by the heap-oracle fuzz target instead.
func TestCrossBackendCancelProperty(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 200 + rng.Intn(1200)
		ops := make([]qop, n)
		for i := range ops {
			op := qop{kind: byte(rng.Intn(5)), key: uint64(rng.Intn(5))}
			// Mostly pushes so the population grows; dt spread over
			// exponentially many scales so slots, cascades, and overflow
			// all trigger.
			if op.kind > 1 && rng.Intn(3) == 0 {
				op.kind = byte(rng.Intn(2))
			}
			op.dt = rng.Int63n(1 << uint(10+rng.Intn(35)))
			op.idx = rng.Intn(1 << 16)
			ops[i] = op
		}
		compareScripts(t, ops)
	}
}

// decodeOps turns fuzz bytes into a bounded op script (10 bytes per op).
func decodeOps(data []byte) []qop {
	const opLen = 10
	n := len(data) / opLen
	if n > 2048 {
		n = 2048
	}
	ops := make([]qop, 0, n)
	for i := 0; i < n; i++ {
		b := data[i*opLen : (i+1)*opLen]
		mant := int64(b[1])<<8 | int64(b[2])
		shift := uint(b[3]) % 44
		dt := mant << shift
		if b[4]&0x80 != 0 {
			dt = -dt
		}
		ops = append(ops, qop{
			kind: b[0] % 5,
			dt:   dt,
			key:  uint64(b[5]),
			idx:  int(b[6])<<8 | int(b[7]),
		})
	}
	return ops
}

// FuzzWheelVsHeap fuzzes the wheel's cascade/overflow/ready paths against
// the heap oracle: any decoded op script must produce identical
// transcripts. The seed corpus (plus testdata/fuzz) covers far-future
// overflow pushes, past-time ready inserts, and cancel-heavy mixes.
func FuzzWheelVsHeap(f *testing.F) {
	// Interleaved near/far pushes with pops: exercises cascade.
	seed1 := make([]byte, 0, 400)
	for i := 0; i < 40; i++ {
		seed1 = append(seed1, byte(i%4), 0x12, byte(i*7), byte(i*3%44), 0, byte(i), 0, byte(i), 0, 0)
	}
	f.Add(seed1)
	// Far-future overflow pushes followed by a full drain.
	seed2 := make([]byte, 0, 400)
	for i := 0; i < 20; i++ {
		seed2 = append(seed2, 1, 0xff, 0xff, 43, 0, 1, 0, 0, 0, 0)
	}
	for i := 0; i < 20; i++ {
		seed2 = append(seed2, 3, 0, 0, 0, 0, 0, 0, 0, 0, 0)
	}
	f.Add(seed2)
	// Cancel-heavy mix with past-time inserts.
	seed3 := make([]byte, 0, 600)
	for i := 0; i < 60; i++ {
		seed3 = append(seed3, byte([]byte{1, 1, 2, 3, 2}[i%5]), byte(i), byte(i*11), byte(i%30), byte(i<<7), byte(i%3), 0, byte(i%13), 0, 0)
	}
	f.Add(seed3)
	f.Fuzz(func(t *testing.T, data []byte) {
		ops := decodeOps(data)
		if len(ops) == 0 {
			return
		}
		ref := driveScript(NewHeap(), ops)
		got := driveScript(NewWheel(), ops)
		if len(got) != len(ref) {
			t.Fatalf("wheel transcript length %d != heap %d", len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("wheel diverges from heap at step %d: %q vs %q", i, got[i], ref[i])
			}
		}
	})
}

// TestWheelOverflowRefill pins the overflow path directly: events beyond
// the top level's horizon must come back in exact order, including ones
// pushed after the cursor has advanced (the frozen-boundary case that
// prevents a late push from leapfrogging an overflowed earlier event).
func TestWheelOverflowRefill(t *testing.T) {
	w := NewWheel()
	horizon := simtime.Time(int64(DefaultWheelTick) << (wheelBits * wheelLevels))
	far := &keyedEvent{t: horizon * 2, id: 1}
	farther := &keyedEvent{t: horizon * 3, id: 2}
	near := &keyedEvent{t: 1000, id: 0}
	w.Push(farther)
	w.Push(far)
	w.Push(near)
	if got := w.Pop(); got != near {
		t.Fatalf("Pop = %v, want near", got)
	}
	// The cursor sits at near's tick. A push between far and farther must
	// not bypass far even though the wheel will refill from overflow.
	between := &keyedEvent{t: horizon*2 + simtime.Time(simtime.Second), id: 3}
	w.Push(between)
	want := []*keyedEvent{far, between, farther}
	for i, wv := range want {
		if got := w.Pop(); got != wv {
			t.Fatalf("Pop %d = %v, want id %d", i, got, wv.id)
		}
	}
	if w.Pop() != nil || w.Len() != 0 {
		t.Fatal("wheel not empty after drain")
	}
}

// TestHeapPushPopAllocFree pins the satellite requirement: the typed heap
// allocates nothing on steady-state Push/Pop (no container/heap interface
// boxing).
func TestHeapPushPopAllocFree(t *testing.T) {
	q := NewHeap()
	evs := make([]*testEvent, 1024)
	for i := range evs {
		evs[i] = &testEvent{t: simtime.Time(i * 997 % 1024), id: i}
	}
	run := func() {
		for _, ev := range evs {
			q.Push(ev)
		}
		for range evs {
			q.Pop()
		}
	}
	run() // warm the backing array
	if allocs := testing.AllocsPerRun(50, run); allocs != 0 {
		t.Fatalf("heap Push/Pop allocates %.1f per cycle, want 0", allocs)
	}
}

// TestWheelScheduleCancelAllocFree pins 0 allocs/op on the wheel's
// schedule/cancel hot path (pooled nodes, reused ready run).
func TestWheelScheduleCancelAllocFree(t *testing.T) {
	q := NewWheel()
	evs := make([]*testEvent, 1024)
	for i := range evs {
		evs[i] = &testEvent{t: simtime.Time(i+1) * simtime.Time(simtime.Millisecond), id: i}
	}
	handles := make([]Handle, len(evs))
	run := func() {
		for i, ev := range evs {
			handles[i] = q.PushCancelable(ev)
		}
		for i := range handles {
			if _, ok := q.Cancel(handles[i]); !ok {
				t.Fatal("cancel failed")
			}
		}
	}
	run() // warm the node pool
	if allocs := testing.AllocsPerRun(50, run); allocs != 0 {
		t.Fatalf("wheel schedule/cancel allocates %.1f per cycle, want 0", allocs)
	}
}

// --- BenchmarkEventQueue* suite -------------------------------------------
//
// Three mixes over steady-state pending populations of 1e3..1e6 timers:
//
//   - ScheduleHeavy: the hold model — pop one, schedule one — measuring
//     pure ordering cost as the population grows.
//   - CancelHeavy: the RTO/idle-timeout pattern — every op cancels a live
//     timer and rearms it, with a pop every few ops. Lazy-cancel backends
//     pay corpse traffic here; the wheel unlinks in O(1).
//   - MixedHorizon: bimodal horizons (µs-scale data events + second-scale
//     timers, a third of which cancel) spanning several wheel levels.

func benchBackends() []struct {
	name string
	mk   func() Canceler
} {
	return []struct {
		name string
		mk   func() Canceler
	}{
		{"heap", func() Canceler { return NewHeap() }},
		{"calendar", func() Canceler { return NewCalendar() }},
		{"wheel", func() Canceler { return NewWheel() }},
	}
}

var benchSizes = []int{1_000, 100_000, 1_000_000}

func BenchmarkEventQueueScheduleHeavy(b *testing.B) {
	for _, size := range benchSizes {
		for _, be := range benchBackends() {
			b.Run(fmt.Sprintf("%s/pending=%d", be.name, size), func(b *testing.B) {
				q := be.mk()
				rng := rand.New(rand.NewSource(3))
				clock := simtime.Time(0)
				evs := make([]*testEvent, size)
				for i := range evs {
					evs[i] = &testEvent{t: clock.Add(simtime.Duration(rng.Int63n(int64(simtime.Second))))}
					q.Push(evs[i])
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ev := q.Pop().(*testEvent)
					clock = ev.t
					ev.t = clock.Add(simtime.Duration(rng.Int63n(int64(simtime.Second))))
					q.Push(ev)
				}
			})
		}
	}
}

func BenchmarkEventQueueCancelHeavy(b *testing.B) {
	for _, size := range benchSizes {
		for _, be := range benchBackends() {
			b.Run(fmt.Sprintf("%s/pending=%d", be.name, size), func(b *testing.B) {
				q := be.mk()
				rng := rand.New(rand.NewSource(5))
				clock := simtime.Time(0)
				rto := simtime.Duration(200 * simtime.Millisecond)
				evs := make([]*testEvent, size)
				handles := make([]Handle, size)
				for i := range evs {
					evs[i] = &testEvent{t: clock.Add(rto + simtime.Duration(rng.Int63n(int64(simtime.Millisecond)))), id: i}
					handles[i] = q.PushCancelable(evs[i])
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					j := i % size
					// Rearm: cancel the live timer, schedule its successor —
					// the per-ACK RTO pattern.
					if _, ok := q.Cancel(handles[j]); !ok {
						b.Fatal("lost a timer")
					}
					evs[j].t = clock.Add(rto + simtime.Duration(rng.Int63n(int64(simtime.Millisecond))))
					handles[j] = q.PushCancelable(evs[j])
					if i%4 == 3 {
						// A timer fires: pop it and rearm so the population
						// holds and lazy backends get to shed corpses.
						ev := q.Pop().(*testEvent)
						clock = ev.t
						ev.t = clock.Add(rto + simtime.Duration(rng.Int63n(int64(simtime.Millisecond))))
						handles[ev.id] = q.PushCancelable(ev)
					}
				}
			})
		}
	}
}

func BenchmarkEventQueueMixedHorizon(b *testing.B) {
	for _, size := range benchSizes {
		for _, be := range benchBackends() {
			b.Run(fmt.Sprintf("%s/pending=%d", be.name, size), func(b *testing.B) {
				q := be.mk()
				rng := rand.New(rand.NewSource(7))
				clock := simtime.Time(0)
				near := int64(100 * simtime.Microsecond)
				far := int64(2 * simtime.Second)
				evs := make([]*testEvent, size)
				handles := make([]Handle, size)
				for i := range evs {
					horizon := near
					if i%2 == 0 {
						horizon = far
					}
					evs[i] = &testEvent{t: clock.Add(simtime.Duration(rng.Int63n(horizon)))}
					handles[i] = q.PushCancelable(evs[i])
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ev := q.Pop().(*testEvent)
					clock = ev.t
					horizon := near
					if i%2 == 0 {
						horizon = far
					}
					ev.t = clock.Add(simtime.Duration(rng.Int63n(horizon)))
					h := q.PushCancelable(ev)
					if i%3 == 0 {
						// A third of long timers get cancelled and rearmed.
						j := i % size
						if _, ok := q.Cancel(handles[j]); ok {
							evs[j].t = clock.Add(simtime.Duration(rng.Int63n(far)))
							handles[j] = q.PushCancelable(evs[j])
						}
					}
					_ = h
				}
			})
		}
	}
}
