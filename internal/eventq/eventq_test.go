package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"horse/internal/simtime"
)

type testEvent struct {
	t  simtime.Time
	id int
}

func (e *testEvent) Time() simtime.Time { return e.t }

func queues() map[string]func() Queue {
	return map[string]func() Queue{
		"heap":     func() Queue { return NewHeap() },
		"calendar": func() Queue { return NewCalendar() },
		"wheel":    func() Queue { return NewWheel() },
		"auto":     func() Queue { return NewAdaptive() },
	}
}

func TestEmptyQueue(t *testing.T) {
	for name, mk := range queues() {
		q := mk()
		if q.Len() != 0 {
			t.Errorf("%s: new queue Len = %d, want 0", name, q.Len())
		}
		if q.Pop() != nil {
			t.Errorf("%s: Pop on empty queue != nil", name)
		}
		if q.Peek() != nil {
			t.Errorf("%s: Peek on empty queue != nil", name)
		}
	}
}

func TestSingleEvent(t *testing.T) {
	for name, mk := range queues() {
		q := mk()
		ev := &testEvent{t: 42}
		q.Push(ev)
		if q.Len() != 1 {
			t.Errorf("%s: Len = %d, want 1", name, q.Len())
		}
		if got := q.Peek(); got != ev {
			t.Errorf("%s: Peek = %v, want the pushed event", name, got)
		}
		if got := q.Pop(); got != ev {
			t.Errorf("%s: Pop = %v, want the pushed event", name, got)
		}
		if q.Len() != 0 {
			t.Errorf("%s: Len after pop = %d, want 0", name, q.Len())
		}
	}
}

func TestOrdering(t *testing.T) {
	times := []simtime.Time{50, 10, 30, 20, 40, 10, 0, 60, 25}
	for name, mk := range queues() {
		q := mk()
		for i, tm := range times {
			q.Push(&testEvent{t: tm, id: i})
		}
		var got []simtime.Time
		for q.Len() > 0 {
			got = append(got, q.Pop().Time())
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
			t.Errorf("%s: popped out of order: %v", name, got)
		}
		if len(got) != len(times) {
			t.Errorf("%s: popped %d events, want %d", name, len(got), len(times))
		}
	}
}

func TestFIFOTieBreak(t *testing.T) {
	for name, mk := range queues() {
		q := mk()
		const n = 100
		for i := 0; i < n; i++ {
			q.Push(&testEvent{t: 7, id: i})
		}
		for i := 0; i < n; i++ {
			ev := q.Pop().(*testEvent)
			if ev.id != i {
				t.Fatalf("%s: tie-break violated: got id %d at position %d", name, ev.id, i)
			}
		}
	}
}

func TestInterleavedPushPop(t *testing.T) {
	for name, mk := range queues() {
		q := mk()
		rng := rand.New(rand.NewSource(1))
		var last simtime.Time = -1
		pushed, popped := 0, 0
		clock := simtime.Time(0)
		for i := 0; i < 5000; i++ {
			if q.Len() == 0 || rng.Intn(3) > 0 {
				// Future events only: times at or after the current clock,
				// as in a real simulation.
				dt := simtime.Duration(rng.Int63n(int64(simtime.Second)))
				q.Push(&testEvent{t: clock.Add(dt), id: pushed})
				pushed++
			} else {
				ev := q.Pop()
				popped++
				if ev.Time() < last {
					t.Fatalf("%s: time went backwards: %v after %v", name, ev.Time(), last)
				}
				last = ev.Time()
				clock = ev.Time()
			}
		}
		for q.Len() > 0 {
			ev := q.Pop()
			popped++
			if ev.Time() < last {
				t.Fatalf("%s: drain: time went backwards: %v after %v", name, ev.Time(), last)
			}
			last = ev.Time()
		}
		if pushed != popped {
			t.Errorf("%s: pushed %d, popped %d", name, pushed, popped)
		}
	}
}

func TestHeapCalendarAgree(t *testing.T) {
	h, c := NewHeap(), NewCalendar()
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 2000; i++ {
		tm := simtime.Time(rng.Int63n(int64(10 * simtime.Second)))
		h.Push(&testEvent{t: tm, id: i})
		c.Push(&testEvent{t: tm, id: i})
	}
	for h.Len() > 0 {
		he := h.Pop().(*testEvent)
		ce := c.Pop().(*testEvent)
		if he.t != ce.t || he.id != ce.id {
			t.Fatalf("queues diverged: heap (%v,%d) calendar (%v,%d)", he.t, he.id, ce.t, ce.id)
		}
	}
	if c.Len() != 0 {
		t.Fatalf("calendar has %d leftover events", c.Len())
	}
}

// Property: for any set of event times, both queues return them sorted and
// complete.
func TestQueueSortProperty(t *testing.T) {
	prop := func(raw []int64) bool {
		for name, mk := range queues() {
			q := mk()
			want := make([]simtime.Time, len(raw))
			for i, v := range raw {
				tm := simtime.Time(v & 0x3fffffffffff) // keep times positive
				want[i] = tm
				q.Push(&testEvent{t: tm, id: i})
			}
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			for i := range want {
				ev := q.Pop()
				if ev == nil || ev.Time() != want[i] {
					t.Logf("%s: mismatch at %d", name, i)
					return false
				}
			}
			if q.Pop() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCalendarResizeStress(t *testing.T) {
	c := NewCalendar()
	rng := rand.New(rand.NewSource(7))
	// Grow far beyond initial capacity, then drain: exercises both the
	// doubling and halving paths.
	const n = 20000
	for i := 0; i < n; i++ {
		c.Push(&testEvent{t: simtime.Time(rng.Int63n(int64(simtime.Hour))), id: i})
	}
	var last simtime.Time = -1
	for i := 0; i < n; i++ {
		ev := c.Pop()
		if ev == nil {
			t.Fatalf("queue empty after %d pops, want %d", i, n)
		}
		if ev.Time() < last {
			t.Fatalf("out of order at pop %d", i)
		}
		last = ev.Time()
	}
}

func TestCalendarClusteredTimes(t *testing.T) {
	// All events in a tiny time window: degenerate for a calendar queue,
	// must still be correct.
	c := NewCalendar()
	for i := 0; i < 1000; i++ {
		c.Push(&testEvent{t: simtime.Time(i % 3), id: i})
	}
	var last simtime.Time = -1
	for c.Len() > 0 {
		ev := c.Pop()
		if ev.Time() < last {
			t.Fatal("out of order")
		}
		last = ev.Time()
	}
}

// TestPeekAgreesWithPop drives both queues through a randomized
// push/peek/pop schedule and checks that Peek always previews exactly the
// event Pop then returns — the contract the simulation kernel's
// pre-advance slow path relies on, and a regression test for the
// calendar's cached-head Peek (which must survive pushes of earlier
// events, pops, and resizes in any order).
func TestPeekAgreesWithPop(t *testing.T) {
	for name, mk := range queues() {
		q := mk()
		rng := rand.New(rand.NewSource(17))
		clock := simtime.Time(0)
		pushed := 0
		for i := 0; i < 20000; i++ {
			switch {
			case q.Len() == 0 || rng.Intn(4) > 0:
				// Mix far-future and near-term times so calendar year
				// jumps, head updates, and resizes all trigger.
				dt := simtime.Duration(rng.Int63n(int64(10 * simtime.Second)))
				if rng.Intn(8) == 0 {
					dt = simtime.Duration(rng.Int63n(int64(simtime.Hour)))
				}
				q.Push(&testEvent{t: clock.Add(dt), id: pushed})
				pushed++
			default:
				want := q.Peek().(*testEvent)
				if again := q.Peek().(*testEvent); again != want {
					t.Fatalf("%s: consecutive Peeks disagree", name)
				}
				got := q.Pop().(*testEvent)
				if got != want {
					t.Fatalf("%s: Peek previewed (%v,%d) but Pop returned (%v,%d)",
						name, want.t, want.id, got.t, got.id)
				}
				clock = got.t
			}
		}
		var last simtime.Time = -1
		for q.Len() > 0 {
			want := q.Peek()
			got := q.Pop()
			if want != got {
				t.Fatalf("%s: drain: Peek/Pop disagree", name)
			}
			if got.Time() < last {
				t.Fatalf("%s: drain out of order", name)
			}
			last = got.Time()
		}
	}
}

// TestCalendarPeekAfterEarlierPush: a push earlier than the cached head
// must displace it.
func TestCalendarPeekAfterEarlierPush(t *testing.T) {
	c := NewCalendar()
	for i := 0; i < 100; i++ {
		c.Push(&testEvent{t: simtime.Time(int64(simtime.Second) * int64(i+10)), id: i})
	}
	if got := c.Peek().Time(); got != simtime.Time(10*simtime.Second) {
		t.Fatalf("Peek = %v, want 10s", got)
	}
	early := &testEvent{t: simtime.Time(simtime.Millisecond), id: 1000}
	c.Push(early)
	if got := c.Peek(); got != early {
		t.Fatalf("Peek after earlier push = %v, want the new head", got)
	}
	if got := c.Pop(); got != early {
		t.Fatalf("Pop = %v, want the new head", got)
	}
}

func BenchmarkHeapPushPop(b *testing.B) {
	benchQueue(b, NewHeap())
}

func BenchmarkCalendarPushPop(b *testing.B) {
	benchQueue(b, NewCalendar())
}

// BenchmarkCalendarPeekPop measures the simulation-loop pattern (Peek
// every iteration, then Pop): before the cached-head fix, Peek alone was
// an O(buckets) full scan.
func BenchmarkCalendarPeekPop(b *testing.B) {
	benchPeekQueue(b, NewCalendar())
}

func BenchmarkHeapPeekPop(b *testing.B) {
	benchPeekQueue(b, NewHeap())
}

func benchPeekQueue(b *testing.B, q Queue) {
	rng := rand.New(rand.NewSource(3))
	const pop = 10000
	clock := simtime.Time(0)
	for i := 0; i < pop; i++ {
		q.Push(&testEvent{t: clock.Add(simtime.Duration(rng.Int63n(int64(simtime.Second))))})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if q.Peek() == nil {
			b.Fatal("empty")
		}
		ev := q.Pop()
		clock = ev.Time()
		q.Push(&testEvent{t: clock.Add(simtime.Duration(rng.Int63n(int64(simtime.Second))))})
	}
}

func benchQueue(b *testing.B, q Queue) {
	rng := rand.New(rand.NewSource(3))
	// Hold-model benchmark: steady-state population of 10k events.
	const pop = 10000
	clock := simtime.Time(0)
	for i := 0; i < pop; i++ {
		q.Push(&testEvent{t: clock.Add(simtime.Duration(rng.Int63n(int64(simtime.Second))))})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := q.Pop()
		clock = ev.Time()
		q.Push(&testEvent{t: clock.Add(simtime.Duration(rng.Int63n(int64(simtime.Second))))})
	}
}
