// Package eventq implements the temporally ordered event queues that drive
// the Horse simulator. Events are the paper's first data-plane building
// block: every input to the topology — a flow arrival, a link failure, a
// control-plane message delivery — is an event with a firing time.
//
// Two implementations are provided behind the Queue interface: a binary
// min-heap (the default, O(log n) per operation) and a calendar queue
// (amortized O(1) when event times are spread roughly uniformly, as is the
// case for high-churn Poisson traffic). Both dequeue events in
// nondecreasing time order and break ties by order key (Keyed) and then
// insertion order, so a simulation run is fully deterministic for a
// given input sequence — and, with entity-derived keys, reproducible by
// the sharded executor regardless of how scheduling interleaves.
package eventq

import (
	"container/heap"

	"horse/internal/simtime"
)

// Event is anything that can be scheduled on a Queue.
type Event interface {
	// Time returns the instant at which the event fires. It must not
	// change while the event is queued.
	Time() simtime.Time
}

// Keyed is an Event that carries a deterministic order key. Queues sort by
// (time, key, insertion order): at one instant, smaller keys fire first,
// and equal keys keep FIFO order. Keys exist for parallel determinism —
// a sharded run cannot reproduce the global insertion order of a serial
// run, but it can reproduce (time, key) because keys derive from stable
// simulation entities (link direction, datapath, flow), not from schedule
// history. Engines that want identical results at any shard count stamp
// every event; events without keys sort after all keyed events at the
// same instant (DefaultOrderKey) in plain FIFO order.
type Keyed interface {
	Event
	// OrderKey returns the event's order key. It must not change while
	// the event is queued.
	OrderKey() uint64
}

// DefaultOrderKey is the order key assumed for events that do not
// implement Keyed. It sorts after every keyed event at the same instant.
const DefaultOrderKey = ^uint64(0)

func orderKeyOf(ev Event) uint64 {
	if k, ok := ev.(Keyed); ok {
		return k.OrderKey()
	}
	return DefaultOrderKey
}

// Queue is a temporally ordered event queue.
type Queue interface {
	// Push schedules an event.
	Push(Event)
	// Pop removes and returns the earliest event. Ties are broken by
	// order key (Keyed; DefaultOrderKey otherwise) and then insertion
	// order (FIFO). Pop returns nil when the queue is empty.
	Pop() Event
	// Peek returns the earliest event without removing it, or nil.
	Peek() Event
	// Len returns the number of queued events.
	Len() int
}

// item pairs an event with its cached order key and insertion sequence
// number for stable ordering. The key is captured once at Push so the hot
// comparison path never re-asserts the Keyed interface.
type item struct {
	ev  Event
	key uint64
	seq uint64
}

func less(a, b item) bool {
	at, bt := a.ev.Time(), b.ev.Time()
	if at != bt {
		return at < bt
	}
	if a.key != b.key {
		return a.key < b.key
	}
	return a.seq < b.seq
}

// Heap is a binary min-heap Queue. The zero value is ready to use.
type Heap struct {
	h heapImpl
}

// NewHeap returns an empty binary-heap event queue.
func NewHeap() *Heap { return &Heap{} }

type heapImpl struct {
	items []item
	seq   uint64
}

func (h *heapImpl) Len() int           { return len(h.items) }
func (h *heapImpl) Less(i, j int) bool { return less(h.items[i], h.items[j]) }
func (h *heapImpl) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *heapImpl) Push(x interface{}) { h.items = append(h.items, x.(item)) }
func (h *heapImpl) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	old[n-1] = item{} // release reference
	h.items = old[:n-1]
	return it
}

// Push schedules an event.
func (q *Heap) Push(ev Event) {
	q.h.seq++
	heap.Push(&q.h, item{ev: ev, key: orderKeyOf(ev), seq: q.h.seq})
}

// Pop removes and returns the earliest event, or nil if the queue is empty.
func (q *Heap) Pop() Event {
	if len(q.h.items) == 0 {
		return nil
	}
	return heap.Pop(&q.h).(item).ev
}

// Peek returns the earliest event without removing it, or nil.
func (q *Heap) Peek() Event {
	if len(q.h.items) == 0 {
		return nil
	}
	return q.h.items[0].ev
}

// Len returns the number of queued events.
func (q *Heap) Len() int { return len(q.h.items) }
