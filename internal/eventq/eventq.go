// Package eventq implements the temporally ordered event queues that drive
// the Horse simulator. Events are the paper's first data-plane building
// block: every input to the topology — a flow arrival, a link failure, a
// control-plane message delivery — is an event with a firing time.
//
// Two implementations are provided behind the Queue interface: a binary
// min-heap (the default, O(log n) per operation) and a calendar queue
// (amortized O(1) when event times are spread roughly uniformly, as is the
// case for high-churn Poisson traffic). Both dequeue events in
// nondecreasing time order and break ties by insertion order, so a
// simulation run is fully deterministic for a given input sequence.
package eventq

import (
	"container/heap"

	"horse/internal/simtime"
)

// Event is anything that can be scheduled on a Queue.
type Event interface {
	// Time returns the instant at which the event fires. It must not
	// change while the event is queued.
	Time() simtime.Time
}

// Queue is a temporally ordered event queue.
type Queue interface {
	// Push schedules an event.
	Push(Event)
	// Pop removes and returns the earliest event. Ties are broken by
	// insertion order (FIFO). Pop returns nil when the queue is empty.
	Pop() Event
	// Peek returns the earliest event without removing it, or nil.
	Peek() Event
	// Len returns the number of queued events.
	Len() int
}

// item pairs an event with its insertion sequence number for stable ordering.
type item struct {
	ev  Event
	seq uint64
}

func less(a, b item) bool {
	at, bt := a.ev.Time(), b.ev.Time()
	if at != bt {
		return at < bt
	}
	return a.seq < b.seq
}

// Heap is a binary min-heap Queue. The zero value is ready to use.
type Heap struct {
	h heapImpl
}

// NewHeap returns an empty binary-heap event queue.
func NewHeap() *Heap { return &Heap{} }

type heapImpl struct {
	items []item
	seq   uint64
}

func (h *heapImpl) Len() int           { return len(h.items) }
func (h *heapImpl) Less(i, j int) bool { return less(h.items[i], h.items[j]) }
func (h *heapImpl) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *heapImpl) Push(x interface{}) { h.items = append(h.items, x.(item)) }
func (h *heapImpl) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	old[n-1] = item{} // release reference
	h.items = old[:n-1]
	return it
}

// Push schedules an event.
func (q *Heap) Push(ev Event) {
	q.h.seq++
	heap.Push(&q.h, item{ev: ev, seq: q.h.seq})
}

// Pop removes and returns the earliest event, or nil if the queue is empty.
func (q *Heap) Pop() Event {
	if len(q.h.items) == 0 {
		return nil
	}
	return heap.Pop(&q.h).(item).ev
}

// Peek returns the earliest event without removing it, or nil.
func (q *Heap) Peek() Event {
	if len(q.h.items) == 0 {
		return nil
	}
	return q.h.items[0].ev
}

// Len returns the number of queued events.
func (q *Heap) Len() int { return len(q.h.items) }
