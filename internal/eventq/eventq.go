// Package eventq implements the temporally ordered event queues that drive
// the Horse simulator. Events are the paper's first data-plane building
// block: every input to the topology — a flow arrival, a link failure, a
// control-plane message delivery — is an event with a firing time.
//
// Three implementations are provided behind the Queue interface: a binary
// min-heap (the default, O(log n) per operation), a calendar queue
// (amortized O(1) when event times are spread roughly uniformly, as is the
// case for high-churn Poisson traffic), and a hierarchical timing wheel
// (O(1) schedule and O(1) true cancellation, built for timer-dominated
// million-flow populations). All dequeue events in nondecreasing time
// order and break ties by order key (Keyed) and then insertion order, so a
// simulation run is fully deterministic for a given input sequence — and,
// with entity-derived keys, reproducible by the sharded executor
// regardless of how scheduling interleaves.
//
// Queues that additionally implement Canceler support true cancellation:
// PushCancelable returns a Handle and Cancel removes the event before it
// fires, instead of the generation-stamp pattern where stale timers sit in
// the queue until they fire as no-ops. The wheel physically unlinks in
// O(1); heap and calendar mark the entry dead and skip it on dequeue (the
// entry is never compared through its event again, so cancelled envelopes
// may be recycled immediately). Len always reports live events only, so
// engine logic keyed on queue emptiness behaves identically on every
// backend.
package eventq

import "horse/internal/simtime"

// Event is anything that can be scheduled on a Queue.
type Event interface {
	// Time returns the instant at which the event fires. It must not
	// change while the event is queued.
	Time() simtime.Time
}

// Keyed is an Event that carries a deterministic order key. Queues sort by
// (time, key, insertion order): at one instant, smaller keys fire first,
// and equal keys keep FIFO order. Keys exist for parallel determinism —
// a sharded run cannot reproduce the global insertion order of a serial
// run, but it can reproduce (time, key) because keys derive from stable
// simulation entities (link direction, datapath, flow), not from schedule
// history. Engines that want identical results at any shard count stamp
// every event; events without keys sort after all keyed events at the
// same instant (DefaultOrderKey) in plain FIFO order.
type Keyed interface {
	Event
	// OrderKey returns the event's order key. It must not change while
	// the event is queued.
	OrderKey() uint64
}

// DefaultOrderKey is the order key assumed for events that do not
// implement Keyed. It sorts after every keyed event at the same instant.
const DefaultOrderKey = ^uint64(0)

func orderKeyOf(ev Event) uint64 {
	if k, ok := ev.(Keyed); ok {
		return k.OrderKey()
	}
	return DefaultOrderKey
}

// Queue is a temporally ordered event queue.
type Queue interface {
	// Push schedules an event.
	Push(Event)
	// Pop removes and returns the earliest event. Ties are broken by
	// order key (Keyed; DefaultOrderKey otherwise) and then insertion
	// order (FIFO). Pop returns nil when the queue is empty.
	Pop() Event
	// Peek returns the earliest event without removing it, or nil.
	Peek() Event
	// Len returns the number of queued (live, uncancelled) events.
	Len() int
}

// Canceler is the optional cancellation capability of a Queue. Engines
// use it to remove dead timers (retransmission timers rearmed on every
// ACK, flow timeouts rescheduled on every packet) instead of letting
// generation-stamped corpses sit in the queue and fire as no-ops.
type Canceler interface {
	Queue
	// PushCancelable schedules an event and returns a handle for Cancel.
	PushCancelable(Event) Handle
	// Cancel removes a previously scheduled event. It returns the event
	// and true when the event was still queued (the caller owns
	// recycling it, and the queue guarantees it will never touch the
	// event again); a zero, stale, already-cancelled, or already-fired
	// handle returns (nil, false).
	Cancel(Handle) (Event, bool)
}

// Handle identifies one cancelable scheduled event. The zero Handle is
// valid and cancels as a no-op. Handles are invalidated when the event
// fires, is cancelled, or is popped — a stale Cancel is safe and returns
// false.
type Handle struct {
	n   *node
	gen uint32
}

// node is the per-event bookkeeping record behind a Handle. Heap and
// calendar use only (ev, gen, dead) — the node marks a queue entry dead
// so dequeue can skip it. The wheel stores events entirely in nodes:
// slot chains and the overflow list link through prev/next, and `where`
// records the node's current location so Cancel can unlink in O(1).
// Nodes are pooled per queue; gen increments on every recycle so stale
// handles never alias a reused node.
type node struct {
	ev    Event
	t     simtime.Time
	key   uint64
	seq   uint64
	prev  *node
	next  *node
	gen   uint32
	where uint16
	dead  bool
}

// Locations for node.where. Values below wheelLevels*wheelSlots are a
// wheel slot index (level<<wheelBits | slot).
const (
	whereNone     = 0xFFFD // not tracked by location (heap/calendar/pooled)
	whereReady    = 0xFFFE // in the wheel's sorted ready run
	whereOverflow = 0xFFFF // in the wheel's overflow list
)

// nodePool is an intrusive free list of nodes, linked through next.
type nodePool struct {
	free *node
}

func (p *nodePool) get() *node {
	if n := p.free; n != nil {
		p.free = n.next
		n.next = nil
		return n
	}
	return &node{where: whereNone}
}

// put recycles a node, bumping gen so outstanding handles go stale.
func (p *nodePool) put(n *node) {
	n.gen++
	n.ev = nil
	n.prev = nil
	n.dead = false
	n.where = whereNone
	n.next = p.free
	p.free = n
}

// item pairs an event with its cached firing time, order key, and
// insertion sequence number. Time and key are captured once at Push, so
// the hot comparison path never calls back into the event — which also
// means a cancelled event's envelope can be recycled while its dead entry
// still sits in a lazy-cancel queue: the entry's ordering fields are
// frozen and its ev pointer is never dereferenced again.
type item struct {
	ev  Event
	t   simtime.Time
	key uint64
	seq uint64
	n   *node // non-nil for cancelable entries
}

func less(a, b item) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	if a.key != b.key {
		return a.key < b.key
	}
	return a.seq < b.seq
}

// Heap is a binary min-heap Queue with hand-rolled typed sift-up/down
// (no container/heap interface boxing: Push and Pop allocate nothing
// beyond amortized slice growth). It implements Canceler with lazy
// cancellation: Cancel marks the entry dead in O(1) and dequeue skips
// corpses. The zero value is ready to use.
type Heap struct {
	items []item
	seq   uint64
	dead  int // cancelled entries still physically in items
	pool  nodePool
}

// NewHeap returns an empty binary-heap event queue.
func NewHeap() *Heap { return &Heap{} }

// Push schedules an event.
func (q *Heap) Push(ev Event) {
	q.seq++
	q.push(item{ev: ev, t: ev.Time(), key: orderKeyOf(ev), seq: q.seq})
}

// PushCancelable schedules an event and returns a cancellation handle.
func (q *Heap) PushCancelable(ev Event) Handle {
	q.seq++
	n := q.pool.get()
	n.ev = ev
	q.push(item{ev: ev, t: ev.Time(), key: orderKeyOf(ev), seq: q.seq, n: n})
	return Handle{n: n, gen: n.gen}
}

// Cancel marks a scheduled event dead. The entry stays in the heap until
// dequeue reaches it, but its event is returned to the caller now and
// never touched again.
func (q *Heap) Cancel(h Handle) (Event, bool) {
	n := h.n
	if n == nil || n.gen != h.gen || n.dead {
		return nil, false
	}
	ev := n.ev
	n.ev = nil
	n.dead = true
	q.dead++
	return ev, true
}

func (q *Heap) push(it item) {
	q.items = append(q.items, it)
	q.siftUp(len(q.items) - 1)
}

func (q *Heap) siftUp(i int) {
	it := q.items[i]
	for i > 0 {
		p := (i - 1) / 2
		if !less(it, q.items[p]) {
			break
		}
		q.items[i] = q.items[p]
		i = p
	}
	q.items[i] = it
}

func (q *Heap) siftDown(i int) {
	n := len(q.items)
	it := q.items[i]
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && less(q.items[r], q.items[l]) {
			m = r
		}
		if !less(q.items[m], it) {
			break
		}
		q.items[i] = q.items[m]
		i = m
	}
	q.items[i] = it
}

// removeMin removes and returns the root entry (live or dead).
func (q *Heap) removeMin() item {
	it := q.items[0]
	n := len(q.items) - 1
	q.items[0] = q.items[n]
	q.items[n] = item{}
	q.items = q.items[:n]
	if n > 1 {
		q.siftDown(0)
	}
	return it
}

// Pop removes and returns the earliest live event, or nil if the queue is
// empty.
func (q *Heap) Pop() Event {
	for len(q.items) > 0 {
		it := q.removeMin()
		if it.n != nil {
			dead := it.n.dead
			q.pool.put(it.n)
			if dead {
				q.dead--
				continue
			}
		}
		return it.ev
	}
	return nil
}

// Peek returns the earliest live event without removing it, or nil.
func (q *Heap) Peek() Event {
	for len(q.items) > 0 {
		it := q.items[0]
		if it.n != nil && it.n.dead {
			q.removeMin()
			q.pool.put(it.n)
			q.dead--
			continue
		}
		return it.ev
	}
	return nil
}

// Len returns the number of live queued events.
func (q *Heap) Len() int { return len(q.items) - q.dead }

// Backend names an event-queue implementation. The zero value is the
// binary heap.
type Backend uint8

const (
	// BackendHeap is the binary min-heap: O(log n) per operation, the
	// safe default for any workload.
	BackendHeap Backend = iota
	// BackendCalendar is the calendar queue: amortized O(1) when event
	// times are spread roughly uniformly.
	BackendCalendar
	// BackendWheel is the hierarchical timing wheel: O(1) schedule and
	// O(1) true cancellation, built for timer-dominated workloads.
	BackendWheel
	// BackendAuto starts on the heap and migrates once to the wheel when
	// cancelable (timer-class) events dominate the early push mix.
	BackendAuto
)

// String returns the wire name of the backend.
func (b Backend) String() string {
	switch b {
	case BackendCalendar:
		return "calendar"
	case BackendWheel:
		return "wheel"
	case BackendAuto:
		return "auto"
	default:
		return "heap"
	}
}

// ParseBackend maps a wire name ("heap", "calendar", "wheel", "auto") to
// a Backend. The empty string is the default heap.
func ParseBackend(s string) (Backend, bool) {
	switch s {
	case "", "heap":
		return BackendHeap, true
	case "calendar":
		return BackendCalendar, true
	case "wheel":
		return BackendWheel, true
	case "auto":
		return BackendAuto, true
	}
	return BackendHeap, false
}

// New returns an empty queue of the selected backend. Every backend
// implements Canceler.
func New(b Backend) Queue {
	switch b {
	case BackendCalendar:
		return NewCalendar()
	case BackendWheel:
		return NewWheel()
	case BackendAuto:
		return NewAdaptive()
	default:
		return NewHeap()
	}
}
