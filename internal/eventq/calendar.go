package eventq

import (
	"sort"

	"horse/internal/simtime"
)

// Calendar is a calendar-queue implementation of Queue (Brown, CACM 1988).
// Events are hashed into day buckets by firing time; a dequeue scans the
// current day's bucket. When event times are spread roughly uniformly —
// typical for Poisson flow arrivals — enqueue and dequeue are amortized
// O(1). The queue resizes (doubling or halving the bucket count) when the
// population strays far from the bucket count, and recalculates the day
// width from a sample of inter-event gaps, following the classic design.
//
// Like Heap, Calendar dequeues in nondecreasing time order with
// (order key, FIFO) tie-breaking, so the two implementations are
// interchangeable. It implements Canceler with the heap's lazy scheme:
// Cancel marks the entry dead in O(1); bucket scans prune corpses.
//
// Peek shares Pop's cursor walk and caches the located head bucket, so the
// Peek-then-Pop pattern of a simulation loop costs one amortized-O(1)
// locate, not a full O(buckets) scan per iteration (the fix behind the E6
// calendar ablation measuring the queue rather than head inspection).
type Calendar struct {
	buckets   [][]item
	width     simtime.Duration // day width per bucket
	lastTime  simtime.Time     // dequeue cursor; monotonically nondecreasing
	bucketIdx int              // bucket holding lastTime
	n         int              // physical entries, live + dead
	dead      int              // cancelled entries not yet pruned
	seq       uint64
	pool      nodePool

	// headIdx caches the bucket holding the current minimum item (-1 when
	// unknown). Valid between a locate and the next mutation that could
	// install an earlier item (Push of a smaller item invalidates or
	// updates it; Pop of the head invalidates it; Cancel may kill the head
	// so it invalidates it; resize rebuilds it).
	headIdx int
}

// NewCalendar returns an empty calendar queue tuned for event times starting
// at the simulation epoch.
func NewCalendar() *Calendar {
	c := &Calendar{}
	c.reinit(2, simtime.Millisecond, 0)
	return c
}

func (c *Calendar) reinit(nbuckets int, width simtime.Duration, start simtime.Time) {
	if width <= 0 {
		width = 1
	}
	c.buckets = make([][]item, nbuckets)
	c.width = width
	c.lastTime = start
	c.bucketIdx = c.bucketFor(start)
	c.headIdx = -1
}

func (c *Calendar) bucketFor(t simtime.Time) int {
	day := int64(t) / int64(c.width)
	idx := int(day % int64(len(c.buckets)))
	if idx < 0 {
		idx += len(c.buckets)
	}
	return idx
}

// Push schedules an event.
func (c *Calendar) Push(ev Event) {
	c.seq++
	c.push(item{ev: ev, t: ev.Time(), key: orderKeyOf(ev), seq: c.seq})
}

// PushCancelable schedules an event and returns a cancellation handle.
func (c *Calendar) PushCancelable(ev Event) Handle {
	c.seq++
	n := c.pool.get()
	n.ev = ev
	c.push(item{ev: ev, t: ev.Time(), key: orderKeyOf(ev), seq: c.seq, n: n})
	return Handle{n: n, gen: n.gen}
}

// Cancel marks a scheduled event dead. The entry stays in its bucket until
// a scan prunes it, but its event is returned to the caller now and never
// touched again.
func (c *Calendar) Cancel(h Handle) (Event, bool) {
	n := h.n
	if n == nil || n.gen != h.gen || n.dead {
		return nil, false
	}
	ev := n.ev
	n.ev = nil
	n.dead = true
	c.dead++
	// The dead entry may be the cached head; relocate on next access.
	c.headIdx = -1
	return ev, true
}

func (c *Calendar) push(it item) {
	// Keep the cursor at or below the minimum live time: Peek's direct
	// search may have jumped it to a far-future head, and the year scan
	// is only correct when no event precedes the cursor's day.
	if it.t < c.lastTime {
		c.lastTime = it.t
		c.bucketIdx = c.bucketFor(it.t)
	}
	idx := c.bucketFor(it.t)
	b := c.buckets[idx]
	// Insert keeping the bucket sorted (buckets are short on average, so a
	// linear scan from the back is cheap and preserves FIFO tie order).
	pos := len(b)
	for pos > 0 && less(it, b[pos-1]) {
		pos--
	}
	b = append(b, item{})
	copy(b[pos+1:], b[pos:])
	b[pos] = it
	c.buckets[idx] = b
	c.n++
	// Keep the cached head current: a new front-of-bucket item that beats
	// the cached head becomes the head; anything else leaves it intact.
	if c.headIdx >= 0 && pos == 0 && idx != c.headIdx && less(it, c.buckets[c.headIdx][0]) {
		c.headIdx = idx
	}
	if c.n > 2*len(c.buckets) && len(c.buckets) < 1<<20 {
		c.resize(2 * len(c.buckets))
	}
}

// pruneFront drops cancelled entries from the front of bucket idx so the
// bucket head, if any, is live.
func (c *Calendar) pruneFront(idx int) {
	b := c.buckets[idx]
	for len(b) > 0 && b[0].n != nil && b[0].n.dead {
		c.pool.put(b[0].n)
		copy(b, b[1:])
		b[len(b)-1] = item{}
		b = b[:len(b)-1]
		c.n--
		c.dead--
	}
	c.buckets[idx] = b
}

// findHead locates the bucket holding the earliest live event, advancing
// the dequeue cursor bookkeeping exactly as a dequeue would, and caches the
// result. Returns -1 when empty.
func (c *Calendar) findHead() int {
	if c.n-c.dead == 0 {
		return -1
	}
	if c.headIdx >= 0 {
		return c.headIdx
	}
	// Scan buckets starting at the cursor; an event in bucket i belongs to
	// the current "year" only if its time falls within this day's span.
	idx := c.bucketIdx
	for i := 0; i < len(c.buckets); i++ {
		c.pruneFront(idx)
		b := c.buckets[idx]
		if len(b) > 0 && b[0].t < c.dayEnd(idx, i) {
			c.headIdx = idx
			return idx
		}
		idx++
		if idx == len(c.buckets) {
			idx = 0
		}
	}
	// No event within the current year: jump the cursor straight to the
	// globally earliest event (direct search). Equal times always hash to
	// the same bucket, so the front of the winning bucket is the head.
	minIdx, minIt := -1, item{}
	for i := range c.buckets {
		c.pruneFront(i)
		b := c.buckets[i]
		if len(b) == 0 {
			continue
		}
		if minIdx == -1 || less(b[0], minIt) {
			minIdx, minIt = i, b[0]
		}
	}
	c.bucketIdx = minIdx
	c.lastTime = minIt.t
	c.headIdx = minIdx
	return minIdx
}

// Pop removes and returns the earliest live event, or nil if empty.
func (c *Calendar) Pop() Event {
	idx := c.findHead()
	if idx < 0 {
		return nil
	}
	b := c.buckets[idx]
	it := b[0]
	copy(b, b[1:])
	b[len(b)-1] = item{}
	c.buckets[idx] = b[:len(b)-1]
	c.n--
	if it.n != nil {
		c.pool.put(it.n)
	}
	c.lastTime = it.t
	c.bucketIdx = idx
	c.headIdx = -1
	if c.n < len(c.buckets)/2 && len(c.buckets) > 2 {
		c.resize(len(c.buckets) / 2)
	}
	return it.ev
}

// dayEnd returns the exclusive upper bound of times belonging to bucket idx
// on the sweep that starts at the cursor, i steps after it.
func (c *Calendar) dayEnd(idx, step int) simtime.Time {
	day := int64(c.lastTime) / int64(c.width)
	return simtime.Time((day + int64(step) + 1) * int64(c.width))
}

// Peek returns the earliest live event without removing it, or nil.
func (c *Calendar) Peek() Event {
	idx := c.findHead()
	if idx < 0 {
		return nil
	}
	return c.buckets[idx][0].ev
}

// Len returns the number of live queued events.
func (c *Calendar) Len() int { return c.n - c.dead }

// resize rebuilds the calendar with nbuckets buckets and a day width derived
// from the current event spacing. Cancelled entries are dropped here, so a
// resize doubles as a full prune.
func (c *Calendar) resize(nbuckets int) {
	all := make([]item, 0, c.n-c.dead)
	for _, b := range c.buckets {
		for _, it := range b {
			if it.n != nil && it.n.dead {
				c.pool.put(it.n)
				c.dead--
				continue
			}
			all = append(all, it)
		}
	}
	sort.Slice(all, func(i, j int) bool { return less(all[i], all[j]) })
	width := c.sampleWidth(all)
	start := c.lastTime
	c.reinit(nbuckets, width, start)
	c.n = 0
	for _, it := range all {
		idx := c.bucketFor(it.t)
		c.buckets[idx] = append(c.buckets[idx], it)
		c.n++
	}
}

// sampleWidth estimates a good day width: roughly the average gap between
// consecutive queued events, clamped to a sane range.
func (c *Calendar) sampleWidth(sorted []item) simtime.Duration {
	if len(sorted) < 2 {
		return c.width
	}
	span := sorted[len(sorted)-1].t - sorted[0].t
	if span <= 0 {
		return c.width
	}
	w := simtime.Duration(int64(span) / int64(len(sorted)-1) * 3)
	if w < 1 {
		w = 1
	}
	return w
}
