package eventq

import (
	"math/bits"

	"horse/internal/simtime"
)

// Wheel is a hierarchical timing wheel (Varghese & Lauck, SOSP 1987; the
// mintmr minute-wheel lineage) implementing Queue and Canceler. Firing
// times quantize into ticks; each of the wheelLevels levels holds
// wheelSlots slots, with a level-i slot spanning wheelSlots^i ticks.
// Schedule is O(1): the tick picks a level by distance from the cursor and
// an intrusive doubly-linked node goes onto that slot's chain. Cancel is
// O(1) true removal: the node unlinks from its chain and recycles
// immediately — no corpse remains to heapify or fire. Far-future events
// beyond the top level's horizon wait in an overflow list and cascade
// down when the wheel drains up to them.
//
// Determinism matches the heap exactly. Slot chains are unordered, but a
// slot is drained all at once into a sorted "ready run" — sorted by the
// cached (time, key, FIFO-seq) triple — before anything pops, and events
// scheduled at or before the cursor's tick insert into the ready run in
// sorted position. Since every event in a pending slot fires strictly
// after every event in the ready run, pops leave the wheel in exactly the
// (time, key, seq) order a heap would produce, byte for byte.
//
// Advancing skips empty regions via per-level occupancy bitmaps: the next
// occupied slot is found with a handful of word scans, not a tick-by-tick
// rotation, so a sparse wheel is as cheap to drain as a heap.
type Wheel struct {
	tick simtime.Duration
	// cur is the current tick: every event at a tick <= cur is in the
	// ready run (or already popped); slots and overflow hold ticks > cur.
	cur   uint64
	heads [wheelLevels * wheelSlots]*node
	occ   [wheelLevels][wheelSlots / 64]uint64
	// ovBoundary is the absolute tick at and beyond which events go to
	// the overflow list. It is fixed between overflow refills (rather
	// than tracking the cursor) so a late push can never leapfrog into a
	// slot ahead of an already-overflowed earlier event.
	ovBoundary uint64
	overflow   *node

	// ready is the sorted run of due items; ready[readyAt:] is pending.
	ready     []item
	readyAt   int
	liveReady int // live (uncancelled) items in ready[readyAt:]

	n    int // live events across ready, slots, and overflow
	seq  uint64
	pool nodePool
}

const (
	wheelBits   = 8
	wheelSlots  = 1 << wheelBits
	wheelLevels = 4
	wheelMask   = wheelSlots - 1
)

// DefaultWheelTick is the default tick width: fine enough that sub-tick
// event bursts (which fall back to sorted ready-run insertion) stay rare
// in packet-level runs, coarse enough that four 256-slot levels span ~50
// days of simulated time before the overflow list is needed.
const DefaultWheelTick = simtime.Microsecond

// NewWheel returns an empty timing wheel with the default tick.
func NewWheel() *Wheel { return NewWheelTick(DefaultWheelTick) }

// NewWheelTick returns an empty timing wheel with the given tick width.
func NewWheelTick(tick simtime.Duration) *Wheel {
	if tick <= 0 {
		tick = 1
	}
	w := &Wheel{tick: tick}
	w.ovBoundary = w.windowEnd(wheelLevels - 1)
	return w
}

func (w *Wheel) tickOf(t simtime.Time) uint64 {
	if t < 0 {
		return 0
	}
	return uint64(t) / uint64(w.tick)
}

// windowEnd returns the first tick past the span that level `level` can
// address from the current cursor: the end of the cursor's enclosing
// level-(level+1) slot.
func (w *Wheel) windowEnd(level int) uint64 {
	shift := uint((level + 1) * wheelBits)
	return (w.cur>>shift + 1) << shift
}

// Push schedules an event.
func (w *Wheel) Push(ev Event) { w.push(ev) }

// PushCancelable schedules an event and returns a cancellation handle.
func (w *Wheel) PushCancelable(ev Event) Handle {
	n := w.push(ev)
	return Handle{n: n, gen: n.gen}
}

func (w *Wheel) push(ev Event) *node {
	w.seq++
	n := w.pool.get()
	n.ev = ev
	n.t = ev.Time()
	n.key = orderKeyOf(ev)
	n.seq = w.seq
	w.place(n)
	w.n++
	return n
}

// place routes a node to the ready run, a slot, or the overflow list
// according to its tick's distance from the cursor.
func (w *Wheel) place(n *node) {
	d := w.tickOf(n.t)
	switch {
	case d <= w.cur:
		w.insertReady(n)
	case d < w.windowEnd(0):
		w.insertSlot(0, int(d&wheelMask), n)
	case d < w.windowEnd(1):
		w.insertSlot(1, int(d>>wheelBits&wheelMask), n)
	case d < w.windowEnd(2):
		w.insertSlot(2, int(d>>(2*wheelBits)&wheelMask), n)
	case d < w.ovBoundary:
		w.insertSlot(3, int(d>>(3*wheelBits)&wheelMask), n)
	default:
		w.insertOverflow(n)
	}
}

// insertReady places a due node into the pending ready run at its sorted
// position, preserving exact heap pop order for events scheduled at (or
// before) the current instant.
func (w *Wheel) insertReady(n *node) {
	n.where = whereReady
	it := item{ev: n.ev, t: n.t, key: n.key, seq: n.seq, n: n}
	lo, hi := w.readyAt, len(w.ready)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if less(w.ready[mid], it) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	w.ready = append(w.ready, item{})
	copy(w.ready[lo+1:], w.ready[lo:])
	w.ready[lo] = it
	w.liveReady++
}

func (w *Wheel) insertSlot(level, slot int, n *node) {
	idx := level<<wheelBits | slot
	n.where = uint16(idx)
	n.prev = nil
	n.next = w.heads[idx]
	if w.heads[idx] != nil {
		w.heads[idx].prev = n
	}
	w.heads[idx] = n
	w.occ[level][slot>>6] |= 1 << (uint(slot) & 63)
}

func (w *Wheel) insertOverflow(n *node) {
	n.where = whereOverflow
	n.prev = nil
	n.next = w.overflow
	if w.overflow != nil {
		w.overflow.prev = n
	}
	w.overflow = n
}

// Cancel removes a scheduled event. Slot and overflow entries unlink and
// recycle in O(1); a ready-run entry is marked dead and skipped on pop.
func (w *Wheel) Cancel(h Handle) (Event, bool) {
	n := h.n
	if n == nil || n.gen != h.gen || n.dead {
		return nil, false
	}
	ev := n.ev
	switch n.where {
	case whereReady:
		n.ev = nil
		n.dead = true
		w.liveReady--
		w.n--
		// Node recycles when the ready run reaches it.
	case whereOverflow:
		if n.prev != nil {
			n.prev.next = n.next
		} else {
			w.overflow = n.next
		}
		if n.next != nil {
			n.next.prev = n.prev
		}
		w.n--
		w.pool.put(n)
	case whereNone:
		return nil, false
	default:
		w.unlinkSlot(n)
		w.n--
		w.pool.put(n)
	}
	return ev, true
}

func (w *Wheel) unlinkSlot(n *node) {
	idx := int(n.where)
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		w.heads[idx] = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	}
	if w.heads[idx] == nil {
		level, slot := idx>>wheelBits, idx&wheelMask
		w.occ[level][slot>>6] &^= 1 << (uint(slot) & 63)
	}
}

// Pop removes and returns the earliest live event, or nil if empty.
func (w *Wheel) Pop() Event {
	for {
		if w.liveReady == 0 {
			if w.n == 0 {
				w.purgeReady()
				return nil
			}
			w.advance()
		}
		it := w.ready[w.readyAt]
		w.ready[w.readyAt] = item{}
		w.readyAt++
		dead := it.n.dead
		w.pool.put(it.n)
		if dead {
			continue
		}
		w.liveReady--
		w.n--
		if w.readyAt == len(w.ready) {
			w.ready = w.ready[:0]
			w.readyAt = 0
		}
		return it.ev
	}
}

// Peek returns the earliest live event without removing it, or nil.
func (w *Wheel) Peek() Event {
	for {
		if w.liveReady == 0 {
			if w.n == 0 {
				return nil
			}
			w.advance()
		}
		it := w.ready[w.readyAt]
		if it.n.dead {
			w.ready[w.readyAt] = item{}
			w.readyAt++
			w.pool.put(it.n)
			continue
		}
		return it.ev
	}
}

// Len returns the number of live queued events.
func (w *Wheel) Len() int { return w.n }

// purgeReady recycles any dead entries left in the ready run and resets it.
func (w *Wheel) purgeReady() {
	for i := w.readyAt; i < len(w.ready); i++ {
		w.pool.put(w.ready[i].n)
		w.ready[i] = item{}
	}
	w.ready = w.ready[:0]
	w.readyAt = 0
}

// advance moves the cursor to the next occupied tick and drains that
// level-0 slot into the ready run, cascading higher-level slots (and, as
// a last resort, the overflow list) down as the cursor crosses their
// windows. Precondition: no live ready items; postcondition: liveReady>0.
func (w *Wheel) advance() {
	w.purgeReady()
	for {
		if w.liveReady > 0 {
			return
		}
		if s, ok := w.nextOcc(0, int(w.cur&wheelMask)); ok {
			w.cur = w.cur&^uint64(wheelMask) | uint64(s)
			w.drainSlot(s)
			continue
		}
		if s, ok := w.nextOcc(1, int(w.cur>>wheelBits&wheelMask)+1); ok {
			w.cur = w.cur&^(1<<(2*wheelBits)-1) | uint64(s)<<wheelBits
			w.cascade(1, s)
			continue
		}
		if s, ok := w.nextOcc(2, int(w.cur>>(2*wheelBits)&wheelMask)+1); ok {
			w.cur = w.cur&^(1<<(3*wheelBits)-1) | uint64(s)<<(2*wheelBits)
			w.cascade(2, s)
			continue
		}
		if s, ok := w.nextOcc(3, int(w.cur>>(3*wheelBits)&wheelMask)+1); ok {
			w.cur = w.cur&^(1<<(4*wheelBits)-1) | uint64(s)<<(3*wheelBits)
			w.cascade(3, s)
			continue
		}
		if w.overflow != nil {
			w.refillFromOverflow()
			continue
		}
		panic("eventq: wheel invariant violated: live events but nothing scheduled")
	}
}

// nextOcc scans level's occupancy bitmap for the first occupied slot at or
// after from.
func (w *Wheel) nextOcc(level, from int) (int, bool) {
	if from >= wheelSlots {
		return 0, false
	}
	word := from >> 6
	b := w.occ[level][word] &^ (1<<(uint(from)&63) - 1)
	for {
		if b != 0 {
			return word<<6 + bits.TrailingZeros64(b), true
		}
		word++
		if word >= wheelSlots/64 {
			return 0, false
		}
		b = w.occ[level][word]
	}
}

// drainSlot empties level-0 slot s into the ready run and sorts it. The
// chain is reversed first so items append in FIFO push order, which makes
// the insertion sort linear for the common already-ordered case.
func (w *Wheel) drainSlot(s int) {
	n := w.heads[s]
	w.heads[s] = nil
	w.occ[0][s>>6] &^= 1 << (uint(s) & 63)
	start := len(w.ready)
	for n != nil {
		next := n.next
		n.prev, n.next = nil, nil
		n.where = whereReady
		w.ready = append(w.ready, item{ev: n.ev, t: n.t, key: n.key, seq: n.seq, n: n})
		w.liveReady++
		n = next
	}
	run := w.ready[start:]
	// Chains are pushed at the front, so reverse to recover FIFO order.
	for i, j := 0, len(run)-1; i < j; i, j = i+1, j-1 {
		run[i], run[j] = run[j], run[i]
	}
	sortItems(run)
}

// cascade empties the slot at (level, s) and re-places each node with the
// cursor now inside the slot's window, pushing it to a lower level (or the
// ready run, for nodes at exactly the cursor tick).
func (w *Wheel) cascade(level, s int) {
	idx := level<<wheelBits | s
	n := w.heads[idx]
	w.heads[idx] = nil
	w.occ[level][s>>6] &^= 1 << (uint(s) & 63)
	for n != nil {
		next := n.next
		n.prev, n.next = nil, nil
		w.place(n)
		n = next
	}
}

// refillFromOverflow jumps the cursor to the earliest overflowed tick,
// re-anchors the overflow boundary there, and re-places every node that
// now fits under it.
func (w *Wheel) refillFromOverflow() {
	min := ^uint64(0)
	for n := w.overflow; n != nil; n = n.next {
		if d := w.tickOf(n.t); d < min {
			min = d
		}
	}
	w.cur = min
	w.ovBoundary = w.windowEnd(wheelLevels - 1)
	n := w.overflow
	w.overflow = nil
	for n != nil {
		next := n.next
		n.prev, n.next = nil, nil
		if w.tickOf(n.t) < w.ovBoundary {
			w.place(n)
		} else {
			w.insertOverflow(n)
		}
		n = next
	}
}

// sortItems orders a drained run by (time, key, seq). Small runs use an
// insertion sort (linear when already ordered); larger runs use an
// in-place heapsort to bound the worst case. Both are allocation-free,
// and stability is irrelevant because seq makes the order total.
func sortItems(a []item) {
	if len(a) <= 32 {
		for i := 1; i < len(a); i++ {
			it := a[i]
			j := i
			for j > 0 && less(it, a[j-1]) {
				a[j] = a[j-1]
				j--
			}
			a[j] = it
		}
		return
	}
	for i := len(a)/2 - 1; i >= 0; i-- {
		siftDownMax(a, i)
	}
	for end := len(a) - 1; end > 0; end-- {
		a[0], a[end] = a[end], a[0]
		siftDownMax(a[:end], 0)
	}
}

func siftDownMax(a []item, i int) {
	it := a[i]
	n := len(a)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && less(a[l], a[r]) {
			m = r
		}
		if !less(it, a[m]) {
			break
		}
		a[i] = a[m]
		i = m
	}
	a[i] = it
}
