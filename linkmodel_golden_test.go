package horse_test

import (
	"context"
	"testing"

	"horse"
)

// goldenDegradedRun executes the golden degraded fat-tree through the
// facade: a k=4 fat-tree, a seeded mixed CBR/TCP Poisson workload, a
// Gilbert–Elliott default model on every link, and one adaptive-rate
// override — at the given fidelity and shard count.
func goldenDegradedRun(t *testing.T, fid horse.Fidelity, shards int, degraded bool) *horse.Collector {
	t.Helper()
	topo := horse.FatTree(4, horse.Gig)
	opts := []horse.Option{
		horse.WithFidelity(fid),
		horse.WithMiss(horse.MissDrop),
		horse.WithController(horse.NewChain(&horse.ProactiveMAC{})),
		horse.WithControlLatency(horse.Microsecond),
	}
	if fid != horse.Packet {
		opts = append(opts, horse.WithTCP(horse.TCPParams{RTT: 500 * horse.Microsecond, MSS: 1500, InitialWindow: 10}))
	}
	if shards > 1 {
		opts = append(opts, horse.WithShards(shards))
	}
	if degraded {
		radio := topo.Links()[0].ID
		opts = append(opts,
			horse.WithLinkModel(horse.GilbertElliott{PGoodBad: 0.02, PBadGood: 0.25, LossGood: 0.001, LossBad: 0.4}),
			horse.WithLinkModelFor(radio, horse.AdaptiveRate{Levels: 4, Floor: 0.25, Every: 10 * horse.Millisecond}),
			horse.WithLinkModelSeed(7),
		)
	}
	eng, err := horse.New(topo, opts...)
	if err != nil {
		t.Fatal(err)
	}
	gen := horse.NewGenerator(107)
	eng.Load(gen.PoissonArrivals(horse.PoissonConfig{
		Hosts: topo.Hosts(), Lambda: 300, Horizon: 200 * horse.Millisecond,
		Sizes: horse.FixedSize(1e6), TCPFraction: 0.5, CBRRateBps: 2e7,
	}))
	col, err := eng.Run(context.Background(), horse.Time(2*horse.Second))
	if err != nil {
		t.Fatal(err)
	}
	return col
}

// TestGoldenDegradedFatTree is the cross-engine golden of the link-model
// subsystem: the identical degraded fat-tree scenario runs at flow and
// packet fidelity, and each engine must express the degradation in its
// own vocabulary — per-frame corruption drops and retransmits at packet
// level, loss-capped (slower, but uncorrupted) fluid flows at flow
// level — while repeat runs and sharded flow runs stay byte-identical.
func TestGoldenDegradedFatTree(t *testing.T) {
	for _, fid := range []horse.Fidelity{horse.Flow, horse.Packet} {
		fid := fid
		t.Run(fid.String(), func(t *testing.T) {
			clean := goldenDegradedRun(t, fid, 1, false)
			col := goldenDegradedRun(t, fid, 1, true)

			if fid == horse.Packet {
				if col.PacketsCorrupted == 0 {
					t.Error("packet engine corrupted no frames on a lossy fabric")
				}
				if col.Retransmits == 0 {
					t.Error("packet engine never retransmitted through loss")
				}
				if clean.PacketsCorrupted != 0 {
					t.Errorf("pristine run corrupted %d frames", clean.PacketsCorrupted)
				}
			} else {
				if col.PacketsCorrupted != 0 {
					t.Errorf("flow engine counted %d corrupted frames; it has no frames", col.PacketsCorrupted)
				}
				// Loss shows up as Mathis-capped TCP throughput: the
				// degraded run must finish real work strictly slower.
				var cleanDone, lossyDone int
				var cleanFCT, lossyFCT float64
				for _, r := range clean.Flows() {
					if r.Completed {
						cleanDone++
						cleanFCT += r.FCT().Seconds()
					}
				}
				for _, r := range col.Flows() {
					if r.Completed {
						lossyDone++
						lossyFCT += r.FCT().Seconds()
					}
				}
				if cleanDone == 0 || lossyDone == 0 {
					t.Fatalf("golden scenario completed %d clean / %d lossy flows", cleanDone, lossyDone)
				}
				if lossyFCT/float64(lossyDone) <= cleanFCT/float64(cleanDone) {
					t.Errorf("degraded flow run not slower: mean FCT %.6fs vs clean %.6fs",
						lossyFCT/float64(lossyDone), cleanFCT/float64(cleanDone))
				}
			}

			// Determinism: a repeat run reproduces the records exactly, and
			// (both engines shard) so does a 4-shard run.
			for name, again := range map[string]*horse.Collector{
				"repeat":   goldenDegradedRun(t, fid, 1, true),
				"4-shards": goldenDegradedRun(t, fid, 4, true),
			} {
				a, b := col.Flows(), again.Flows()
				if len(a) != len(b) {
					t.Fatalf("%s: %d records vs %d", name, len(a), len(b))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("%s: record %d diverged:\n%+v\nvs\n%+v", name, i, a[i], b[i])
					}
				}
			}
		})
	}
}
