package horse

import (
	"fmt"

	"horse/api/wire"
	"horse/internal/controller"
	"horse/internal/simtime"
	"horse/internal/tcpmodel"
)

// This file is the bridge between the wire protocol's serializable
// session specs (api/wire) and the functional-options builder: the
// option-spec side of the service daemon. Every spec field maps onto the
// exact With* option a local caller would write, so spec-built engines
// inherit the builder's eager validation — a bad spec fails with a typed
// *BuildError (or *wire.SpecError) before any engine state exists, which
// the daemon surfaces as a wire error at Submit time.

// SpecFidelity parses a wire fidelity name ("" defaults to Flow).
func SpecFidelity(name string) (Fidelity, error) {
	switch name {
	case "", wire.FidelityFlow:
		return Flow, nil
	case wire.FidelityPacket:
		return Packet, nil
	case wire.FidelityHybrid:
		return Hybrid, nil
	}
	return 0, &BuildError{Option: "WithFidelity", Reason: fmt.Sprintf("unknown fidelity name %q", name)}
}

// SpecController builds the controller chain a spec names (nil when the
// spec names no apps).
func SpecController(apps []wire.AppSpec) (Controller, error) {
	if len(apps) == 0 {
		return nil, nil
	}
	var chain []App
	for i, a := range apps {
		switch a.Kind {
		case wire.AppProactiveMAC:
			chain = append(chain, &controller.ProactiveMAC{})
		case wire.AppReactiveMAC:
			chain = append(chain, &controller.ReactiveMAC{IdleTimeout: simtime.Duration(a.IdleTimeoutNs)})
		case wire.AppECMP:
			chain = append(chain, &controller.ECMPLoadBalancer{})
		default:
			return nil, &BuildError{Option: "WithController", Reason: fmt.Sprintf("controller[%d]: unknown app kind %q", i, a.Kind)}
		}
	}
	return NewChain(chain...), nil
}

// SpecOptions converts a serialized option set into the equivalent
// functional options. Zero-valued spec fields yield no option, so the
// builder's defaults apply; set fields validate through the same eager
// path as hand-written options.
func SpecOptions(o wire.OptionsSpec) ([]Option, error) {
	fid, err := SpecFidelity(o.Fidelity)
	if err != nil {
		return nil, err
	}
	opts := []Option{WithFidelity(fid)}
	ctrl, err := SpecController(o.Controller)
	if err != nil {
		return nil, err
	}
	if ctrl != nil {
		opts = append(opts, WithController(ctrl))
	}
	switch o.Miss {
	case "", "drop":
		// The default.
	case "controller":
		opts = append(opts, WithMiss(MissController))
	default:
		return nil, &BuildError{Option: "WithMiss", Reason: fmt.Sprintf("unknown miss behavior %q", o.Miss)}
	}
	if o.ControlLatencyNs != 0 {
		opts = append(opts, WithControlLatency(Duration(o.ControlLatencyNs)))
	}
	if o.TCPRTTNs != 0 || o.TCPMSS != 0 || o.TCPInitialWindow != 0 {
		opts = append(opts, WithTCP(tcpmodel.Params{
			RTT:           Duration(o.TCPRTTNs),
			MSS:           o.TCPMSS,
			InitialWindow: o.TCPInitialWindow,
		}))
	}
	if o.StatsEveryNs != 0 {
		opts = append(opts, WithStatsEvery(Duration(o.StatsEveryNs)))
	}
	if o.RateEpsilon != nil {
		opts = append(opts, WithRateEpsilon(*o.RateEpsilon))
	}
	if o.FullRecompute {
		opts = append(opts, WithFullRecompute())
	}
	if o.CalendarQueue {
		opts = append(opts, WithCalendarQueue())
	}
	switch o.EventQueue {
	case "":
		// The default (heap) — no option.
	case wire.EventQueueHeap:
		opts = append(opts, WithEventQueue(EventQueueHeap))
	case wire.EventQueueCalendar:
		opts = append(opts, WithEventQueue(EventQueueCalendar))
	case wire.EventQueueWheel:
		opts = append(opts, WithEventQueue(EventQueueWheel))
	case wire.EventQueueAuto:
		opts = append(opts, WithEventQueue(EventQueueAuto))
	default:
		return nil, &BuildError{Option: "WithEventQueue", Reason: fmt.Sprintf("unknown event queue %q", o.EventQueue)}
	}
	if o.Shards != 0 {
		opts = append(opts, WithShards(o.Shards))
	}
	if o.ShardWorkers != nil {
		opts = append(opts, WithShardWorkers(*o.ShardWorkers))
	}
	switch o.ShardBalancing {
	case "":
		// The default (uniform) — no option.
	case wire.BalanceUniform:
		opts = append(opts, WithShardBalancing(BalanceUniform))
	case wire.BalanceWeighted:
		opts = append(opts, WithShardBalancing(BalanceWeighted))
	case wire.BalanceSteal:
		opts = append(opts, WithShardBalancing(BalanceSteal))
	default:
		return nil, &BuildError{Option: "WithShardBalancing", Reason: fmt.Sprintf("unknown balancing mode %q", o.ShardBalancing)}
	}
	if o.QueuePackets != nil {
		opts = append(opts, WithQueuePackets(*o.QueuePackets))
	}
	if o.RTOMinNs != nil {
		opts = append(opts, WithRTOMin(Duration(*o.RTOMinNs)))
	}
	if o.PacketFraction != nil {
		opts = append(opts, WithPacketFraction(*o.PacketFraction))
	}
	if o.LinkModel != nil {
		m, err := o.LinkModel.Model("options.link_model")
		if err != nil {
			return nil, err
		}
		opts = append(opts, WithLinkModel(m))
	}
	if o.LinkModelSeed != 0 {
		opts = append(opts, WithLinkModelSeed(o.LinkModelSeed))
	}
	// Per-link entries (OptionsSpec.LinkModelFor) reference links by node
	// name and resolve in NewFromSpec, where the topology exists.
	return opts, nil
}

// NewFromSpec builds a fully loaded engine from a serialized session
// spec: topology construction, option bridging, workload materialization
// and Load, then scenario application (after Load, so workload demands
// keep the low load-order indices — the legacy Load-then-Apply
// ordering). extra options append after the spec's, for run-lifecycle
// attachments the daemon adds (record sinks, progress hooks).
//
// The returned horizon is the spec's Until (simtime.Never when unset);
// run the engine with eng.Run(ctx, until). Errors are *BuildError,
// *wire.SpecError, or *ScenarioEventError — all validation, no partial
// engine state.
func NewFromSpec(spec *wire.SessionSpec, extra ...Option) (Engine, Time, error) {
	if spec == nil {
		return nil, 0, &BuildError{Option: "NewFromSpec", Reason: "nil SessionSpec"}
	}
	topo, err := spec.Topology.Build()
	if err != nil {
		return nil, 0, err
	}
	opts, err := SpecOptions(spec.Options)
	if err != nil {
		return nil, 0, err
	}
	for i, lm := range spec.Options.LinkModelFor {
		link, m, err := lm.Resolve(topo, i)
		if err != nil {
			return nil, 0, err
		}
		opts = append(opts, WithLinkModelFor(link, m))
	}
	opts = append(opts, extra...)
	// Streamed workloads ingest through a bounded reader option; retained
	// ones materialize the trace and Load it below.
	var tr Trace
	if spec.Workload.Stream {
		r, err := spec.Workload.Reader(topo)
		if err != nil {
			return nil, 0, err
		}
		opts = append(opts, WithTraceReader(r))
	} else {
		tr, err = spec.Workload.Trace(topo)
		if err != nil {
			return nil, 0, err
		}
	}
	tl, err := wire.Timeline(spec.Scenario, topo)
	if err != nil {
		return nil, 0, err
	}
	until := spec.Until()
	eng, err := New(topo, opts...)
	if err != nil {
		return nil, 0, err
	}
	if tr != nil {
		eng.Load(tr)
	}
	if tl != nil {
		if err := tl.Apply(eng, until); err != nil {
			return nil, 0, err
		}
	}
	return eng, until, nil
}
