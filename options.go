package horse

import (
	"fmt"

	"horse/internal/eventq"
	"horse/internal/hybrid"
	"horse/internal/linkmodel"
	"horse/internal/traffic"
)

// Option configures New. Options validate their arguments eagerly and
// surface problems as *BuildError from New; an option that does not apply
// to the selected fidelity (say WithPacketFraction on a Flow engine) is
// an error too, never a silent no-op.
type Option func(*options) error

// options is the resolved configuration New builds from. The "set" flags
// distinguish an explicit zero from an untouched default so cross-option
// validation can tell them apart.
type options struct {
	fidelity      Fidelity
	controller    Controller
	miss          MissBehavior
	controlLat    Duration
	tcp           TCPParams
	tcpSet        bool
	statsEvery    Duration
	rateEpsilon   float64
	rateEpsSet    bool
	fullRecompute bool
	calendar      bool
	eventQueue    EventQueue
	eventQSet     bool
	shards        int
	shardWorkers  int
	workersSet    bool
	balance       ShardBalancing
	balanceSet    bool
	queuePackets  int
	queueSet      bool
	rtoMin        Duration
	rtoSet        bool
	packetLevel   func(i int, d traffic.Demand) bool
	packetSet     bool
	timeline      *Scenario
	linkDefault   LinkModel
	linkPer       []linkModelFor
	linkSeed      uint64
	linkSet       bool
	reader        traffic.Reader
	sink          func(FlowRecord)
	progressFn    ProgressFunc
	progressEvery Duration
	observers     []Observer
}

// validate enforces the cross-option rules once every option has applied
// (so option order never matters).
func (o *options) validate() error {
	bad := func(opt, reason string) error { return &BuildError{Option: opt, Reason: reason} }
	if o.calendar && o.eventQSet && o.eventQueue != EventQueueCalendar {
		return bad("WithEventQueue", fmt.Sprintf("conflicts with WithCalendarQueue (which means WithEventQueue(EventQueueCalendar), not %v); drop one", o.eventQueue))
	}
	switch o.fidelity {
	case Flow:
		if o.packetSet {
			return bad("WithPacketFraction", "only a Hybrid engine splits the demand stream; set WithFidelity(horse.Hybrid)")
		}
		if o.queueSet {
			return bad("WithQueuePackets", "the Flow engine has no packet queues; applies to Packet and Hybrid")
		}
		if o.rtoSet {
			return bad("WithRTOMin", "the Flow engine has no retransmission timer; applies to Packet and Hybrid")
		}
		if o.workersSet {
			return bad("WithShardWorkers", "only the Packet engine runs the sharded executor")
		}
		if o.balanceSet {
			return bad("WithShardBalancing", "only the Packet engine runs the sharded executor")
		}
	case Packet:
		if o.balanceSet && o.shards == 0 {
			return bad("WithShardBalancing", "balancing applies to sharded runs; add WithShards(k)")
		}
		if o.packetSet {
			return bad("WithPacketFraction", "only a Hybrid engine splits the demand stream; set WithFidelity(horse.Hybrid)")
		}
		if o.tcpSet {
			return bad("WithTCP", "the Packet engine models TCP per packet; the fluid TCP parameters apply to Flow and Hybrid")
		}
		if o.rateEpsSet {
			return bad("WithRateEpsilon", "the Packet engine has no fair-share allocator; applies to Flow and Hybrid")
		}
		if o.fullRecompute {
			return bad("WithFullRecompute", "the Packet engine has no fair-share allocator; applies to Flow only")
		}
	case Hybrid:
		if o.shards != 0 {
			return bad("WithShards", "the Hybrid coupler shares one kernel and runs serial; applies to Flow and Packet")
		}
		if o.workersSet {
			return bad("WithShardWorkers", "only the Packet engine runs the sharded executor")
		}
		if o.balanceSet {
			return bad("WithShardBalancing", "only the Packet engine runs the sharded executor")
		}
		if o.fullRecompute {
			return bad("WithFullRecompute", "applies to Flow only")
		}
	}
	return nil
}

// WithFidelity selects the engine granularity (default Flow).
func WithFidelity(f Fidelity) Option {
	return func(o *options) error {
		if f > Hybrid {
			return &BuildError{Option: "WithFidelity", Reason: fmt.Sprintf("unknown fidelity %d", f)}
		}
		o.fidelity = f
		return nil
	}
}

// WithController attaches the control plane (default: none — pure
// pre-installed-state runs). Combine with WithMiss(MissController) for
// reactive scenarios, where table misses punt to the controller.
func WithController(c Controller) Option {
	return func(o *options) error {
		if c == nil {
			return &BuildError{Option: "WithController", Reason: "nil Controller (omit the option for a controller-less run)"}
		}
		o.controller = c
		return nil
	}
}

// WithMiss sets the table-miss behavior of every switch (default
// MissDrop).
func WithMiss(m MissBehavior) Option {
	return func(o *options) error {
		if m != MissDrop && m != MissController {
			return &BuildError{Option: "WithMiss", Reason: fmt.Sprintf("unknown miss behavior %d", m)}
		}
		o.miss = m
		return nil
	}
}

// WithControlLatency delays every switch↔controller message by d (default
// 1 ms).
func WithControlLatency(d Duration) Option {
	return func(o *options) error {
		if d <= 0 {
			return &BuildError{Option: "WithControlLatency", Reason: fmt.Sprintf("non-positive latency %v", d)}
		}
		o.controlLat = d
		return nil
	}
}

// WithTCP tunes the fluid (flow-level) TCP model — Flow and Hybrid
// fidelities.
func WithTCP(p TCPParams) Option {
	return func(o *options) error {
		if p.RTT < 0 {
			return &BuildError{Option: "WithTCP", Reason: fmt.Sprintf("negative RTT %v", p.RTT)}
		}
		o.tcp = p
		o.tcpSet = true
		return nil
	}
}

// WithStatsEvery samples link utilization at this period (default 0: no
// time series).
func WithStatsEvery(d Duration) Option {
	return func(o *options) error {
		if d < 0 {
			return &BuildError{Option: "WithStatsEvery", Reason: fmt.Sprintf("negative period %v", d)}
		}
		o.statsEvery = d
		return nil
	}
}

// WithRateEpsilon sets the relative rate-change threshold below which
// fair-share changes do not reschedule events (default 1%) — Flow and
// Hybrid fidelities.
func WithRateEpsilon(eps float64) Option {
	return func(o *options) error {
		if eps < 0 || eps >= 1 {
			return &BuildError{Option: "WithRateEpsilon", Reason: fmt.Sprintf("epsilon %g outside [0, 1)", eps)}
		}
		o.rateEpsilon = eps
		o.rateEpsSet = true
		return nil
	}
}

// WithFullRecompute disables incremental fair-share solving (the E6
// ablation switch) — Flow fidelity only.
func WithFullRecompute() Option {
	return func(o *options) error {
		o.fullRecompute = true
		return nil
	}
}

// EventQueue selects the simulation kernel's event-queue backend.
type EventQueue int

// Event-queue backends. All four dispatch events in exactly the same
// order — (time, order key, FIFO) — so results are byte-identical across
// backends; they differ only in cost profile.
const (
	// EventQueueHeap is the binary min-heap: O(log n) operations, the
	// lowest constant factors, allocation-free. The default.
	EventQueueHeap EventQueue = iota
	// EventQueueCalendar is the calendar queue (Brown 1988): amortized
	// O(1) for uniformly spread event times (the E6 ablation backend).
	EventQueueCalendar
	// EventQueueWheel is the hierarchical timing wheel: O(1) schedule and
	// O(1) true cancellation, the backend for timer-dominated workloads
	// (million-flow runs rescheduling completions and RTOs constantly).
	EventQueueWheel
	// EventQueueAuto starts on the heap and migrates once to the wheel if
	// cancelable timers dominate the early event mix. Deterministic: the
	// decision depends only on the schedule sequence.
	EventQueueAuto
)

// String returns the wire name of the backend ("heap", "calendar",
// "wheel", "auto").
func (q EventQueue) String() string {
	return eventq.Backend(q).String()
}

// WithEventQueue selects the kernel's event-queue backend (default
// EventQueueHeap; any fidelity). In sharded runs every per-shard kernel
// uses the selected backend. Results do not depend on the choice — only
// run time does.
func WithEventQueue(q EventQueue) Option {
	return func(o *options) error {
		if q < EventQueueHeap || q > EventQueueAuto {
			return &BuildError{Option: "WithEventQueue", Reason: fmt.Sprintf("unknown event queue %d", q)}
		}
		o.eventQueue = q
		o.eventQSet = true
		return nil
	}
}

// WithCalendarQueue selects the calendar event queue instead of the
// binary heap (the E6 ablation switch, any fidelity).
//
// Deprecated: use WithEventQueue(EventQueueCalendar). The two remain
// equivalent; combining WithCalendarQueue with a different WithEventQueue
// selection is a build error.
func WithCalendarQueue() Option {
	return func(o *options) error {
		o.calendar = true
		return nil
	}
}

// WithShards enables multi-core execution with up to k shards. On a
// Packet engine the topology is edge-cut partitioned and each shard runs
// its own event loop (records stay byte-identical for any k); on a Flow
// engine the fair-share settle scan fans across a k-worker pool. Not
// applicable to Hybrid (shared-kernel runs are serial).
func WithShards(k int) Option {
	return func(o *options) error {
		if k < 0 {
			return &BuildError{Option: "WithShards", Reason: fmt.Sprintf("negative shard count %d", k)}
		}
		o.shards = k
		return nil
	}
}

// ShardBalancing selects how a sharded Packet engine places and re-places
// work across shards. Every mode preserves the determinism contract:
// records are byte-identical to the serial engine at any shard count.
type ShardBalancing int

const (
	// BalanceUniform edge-cut partitions by switch count (the default).
	BalanceUniform ShardBalancing = iota
	// BalanceWeighted partitions by demand-derived event-rate weights: the
	// expected packet load of each flow is charged to its endpoint
	// switches, so shards even out expected event load rather than switch
	// count.
	BalanceWeighted
	// BalanceSteal is BalanceWeighted plus window-barrier work stealing:
	// when one shard's dispatch rate dominates a window, a whole switch
	// group (the switch, its hosts, their flows and timers) migrates to
	// the coldest shard between windows.
	BalanceSteal
)

// String returns the wire name of the mode ("uniform", "weighted",
// "steal").
func (b ShardBalancing) String() string {
	switch b {
	case BalanceWeighted:
		return "weighted"
	case BalanceSteal:
		return "steal"
	default:
		return "uniform"
	}
}

// WithShardBalancing selects the load-balancing mode of a sharded Packet
// engine (default BalanceUniform). Requires WithShards; Packet fidelity
// only. Results do not depend on the choice — only wall-clock time does.
func WithShardBalancing(b ShardBalancing) Option {
	return func(o *options) error {
		if b < BalanceUniform || b > BalanceSteal {
			return &BuildError{Option: "WithShardBalancing", Reason: fmt.Sprintf("unknown balancing mode %d", b)}
		}
		o.balance = b
		o.balanceSet = true
		return nil
	}
}

// WithShardWorkers bounds the worker pool driving shard windows (default:
// one worker per shard) — Packet fidelity only.
func WithShardWorkers(n int) Option {
	return func(o *options) error {
		if n < 0 {
			return &BuildError{Option: "WithShardWorkers", Reason: fmt.Sprintf("negative worker count %d", n)}
		}
		o.shardWorkers = n
		o.workersSet = true
		return nil
	}
}

// WithQueuePackets sets the per-output-port drop-tail queue capacity
// (default 100) — Packet and Hybrid fidelities.
func WithQueuePackets(n int) Option {
	return func(o *options) error {
		if n < 0 {
			return &BuildError{Option: "WithQueuePackets", Reason: fmt.Sprintf("negative capacity %d", n)}
		}
		o.queuePackets = n
		o.queueSet = true
		return nil
	}
}

// WithRTOMin sets the packet engine's minimum retransmission timeout
// (default 200 ms) — Packet and Hybrid fidelities.
func WithRTOMin(d Duration) Option {
	return func(o *options) error {
		if d < 0 {
			return &BuildError{Option: "WithRTOMin", Reason: fmt.Sprintf("negative timeout %v", d)}
		}
		o.rtoMin = d
		o.rtoSet = true
		return nil
	}
}

// WithPacketFraction flags ~p of the demand stream (spread evenly over
// load order) for packet-level simulation — Hybrid fidelity only. p=0
// flags none, p=1 all. WithPacketSelector replaces the selector wholesale.
func WithPacketFraction(p float64) Option {
	return func(o *options) error {
		if p < 0 || p > 1 {
			return &BuildError{Option: "WithPacketFraction", Reason: fmt.Sprintf("fraction %g outside [0, 1]", p)}
		}
		o.packetLevel = hybrid.Fraction(p)
		o.packetSet = true
		return nil
	}
}

// WithPacketSelector flags demands for packet-level simulation with a
// custom selector (called per loaded demand with its load order) — Hybrid
// fidelity only.
func WithPacketSelector(sel func(i int, d Demand) bool) Option {
	return func(o *options) error {
		if sel == nil {
			return &BuildError{Option: "WithPacketSelector", Reason: "nil selector (omit the option, or use WithPacketFraction)"}
		}
		o.packetLevel = sel
		o.packetSet = true
		return nil
	}
}

// linkModelFor is one WithLinkModelFor installation, applied in option
// order after any WithLinkModel default.
type linkModelFor struct {
	link LinkID
	m    LinkModel
}

// WithLinkModel installs a degradation model on every link from the
// start of the run (any fidelity): the packet engine corrupts frames and
// scales transmitters per the model, the flow engine folds its loss rate
// into TCP demand caps and its rate scale into fair-share capacities,
// and a hybrid run drives both engines off one shared state. The model
// validates eagerly; per-link overrides layer on via WithLinkModelFor,
// and scripted changes via Scenario.LinkDegrade/LinkRestore.
func WithLinkModel(m LinkModel) Option {
	return func(o *options) error {
		if err := linkmodel.Validate(m); err != nil {
			return &BuildError{Option: "WithLinkModel", Reason: err.Error()}
		}
		o.linkDefault = m
		o.linkSet = true
		return nil
	}
}

// WithLinkModelFor installs a degradation model on one link (any
// fidelity); it may repeat, and overrides any WithLinkModel default for
// that link. The link is validated against the topology in New.
func WithLinkModelFor(link LinkID, m LinkModel) Option {
	return func(o *options) error {
		if err := linkmodel.Validate(m); err != nil {
			return &BuildError{Option: "WithLinkModelFor", Reason: err.Error()}
		}
		o.linkPer = append(o.linkPer, linkModelFor{link: link, m: m})
		o.linkSet = true
		return nil
	}
}

// WithLinkModelSeed seeds the link models' corruption streams (default
// 1). Two runs with the same seed, workload, and models draw identical
// per-direction corruption sequences at every fidelity, shard count, and
// event-queue backend; changing the seed redraws them.
func WithLinkModelSeed(seed uint64) Option {
	return func(o *options) error {
		if seed == 0 {
			return &BuildError{Option: "WithLinkModelSeed", Reason: "seed 0 is reserved (the default stream); pick any nonzero seed"}
		}
		o.linkSeed = seed
		o.linkSet = true
		return nil
	}
}

// WithScenario applies a scripted timeline of network dynamics at build
// time: the timeline is validated against the topology (unknown subjects
// and negative times fail New) and compiled onto the engine before it
// returns. Horizon-aware validation is available through
// Scenario.Validate or a direct Apply.
//
// Because the timeline compiles before any subsequent Load call, a
// timeline carrying Surge events loads its surge demands FIRST — ahead
// of the workload. Topology events are unaffected (they order by
// deterministic keys, not schedule order), but anything sensitive to
// demand load order — a Hybrid engine's WithPacketFraction selector,
// load-order record numbering — sees the surge demands at the lowest
// indices. To reproduce a legacy Load-then-Apply ordering exactly, call
// Scenario.Apply(eng, horizon) after Load instead of using this option.
func WithScenario(tl *Scenario) Option {
	return func(o *options) error {
		if tl == nil {
			return &BuildError{Option: "WithScenario", Reason: "nil Scenario"}
		}
		o.timeline = tl
		return nil
	}
}

// WithRecordSink streams every FlowRecord to sink as it finalizes instead
// of accumulating records in the Collector — the bounded-memory results
// path for multi-million-flow runs. The stream carries exactly the
// records, in exactly the order, Collector().Flows() would have held: the
// Flow engine delivers as flows finish (and reclaims their state), the
// Packet engine at Finish after the sharded barrier merge, the Hybrid
// coupler after load-order renumbering.
func WithRecordSink(sink func(FlowRecord)) Option {
	return func(o *options) error {
		if sink == nil {
			return &BuildError{Option: "WithRecordSink", Reason: "nil sink (omit the option to collect in memory)"}
		}
		o.sink = sink
		return nil
	}
}

// WithTraceReader streams the workload in from r instead of an eager
// Load: the engine pulls one demand at a time as virtual time reaches
// each start, so arbitrarily long traces ingest with bounded memory —
// the input-side counterpart of WithRecordSink. r must yield demands in
// nondecreasing Start order (NewTraceCSVReader buffers a bounded window
// to absorb local disorder; an out-of-window row fails the run with
// ErrTraceOrder). Streamed runs produce byte-identical records to Load
// of the same sequence at every fidelity, shard count, and event-queue
// backend. Load may still be called for extra demands; they schedule
// eagerly alongside the stream.
func WithTraceReader(r TraceReader) Option {
	return func(o *options) error {
		if r == nil {
			return &BuildError{Option: "WithTraceReader", Reason: "nil reader (use Load for in-memory traces)"}
		}
		o.reader = r
		return nil
	}
}

// WithProgress reports run progress to fn once per DefaultProgressEvery
// of virtual time, driven off the kernel's pre-advance path (window
// barriers, in sharded runs). Use WithProgressEvery for a different
// period.
func WithProgress(fn ProgressFunc) Option {
	return WithProgressEvery(DefaultProgressEvery, fn)
}

// WithProgressEvery is WithProgress with an explicit reporting period.
func WithProgressEvery(every Duration, fn ProgressFunc) Option {
	return func(o *options) error {
		if fn == nil {
			return &BuildError{Option: "WithProgress", Reason: "nil callback"}
		}
		if every <= 0 {
			return &BuildError{Option: "WithProgress", Reason: fmt.Sprintf("non-positive period %v", every)}
		}
		o.progressFn = fn
		o.progressEvery = every
		return nil
	}
}

// WithObserver registers an observer of applied network dynamics (link
// and switch flips, controller detach/reattach); it may repeat.
// Equivalent to calling Engine.Observe before Run.
func WithObserver(fn Observer) Option {
	return func(o *options) error {
		if fn == nil {
			return &BuildError{Option: "WithObserver", Reason: "nil observer"}
		}
		o.observers = append(o.observers, fn)
		return nil
	}
}
