package wire

import (
	"fmt"
	"math"

	"horse/internal/addr"
	"horse/internal/header"
	"horse/internal/linkmodel"
	"horse/internal/netgraph"
	"horse/internal/scenario"
	"horse/internal/simtime"
	"horse/internal/traffic"
)

// SessionSpec is the full serializable description of one simulation
// session: everything horse.New plus Load plus a Scenario express in
// code, as data. It is the Submit payload of the wire protocol, and the
// contract behind the service's parity guarantee — the daemon builds the
// engine from the spec through the same façade bridge a one-shot caller
// would use, so wire-submitted sessions produce byte-identical records.
type SessionSpec struct {
	Topology TopoSpec     `json:"topology"`
	Workload WorkloadSpec `json:"workload"`
	// Scenario is an optional scripted timeline, applied after Load (the
	// legacy ordering: workload demands keep the low load-order indices).
	Scenario []EventSpec `json:"scenario,omitempty"`
	Options  OptionsSpec `json:"options,omitempty"`
	// UntilNs bounds the run in virtual time; 0 means run until the
	// event queue drains.
	UntilNs int64 `json:"until_ns,omitempty"`
}

// Until returns the run horizon (simtime.Never when unset).
func (s *SessionSpec) Until() simtime.Time {
	if s.UntilNs <= 0 {
		return simtime.Never
	}
	return simtime.Time(s.UntilNs)
}

// SpecError reports an invalid field of a session spec.
type SpecError struct {
	Field  string
	Reason string
}

func (e *SpecError) Error() string { return fmt.Sprintf("wire: spec %s: %s", e.Field, e.Reason) }

func specErr(field, format string, a ...interface{}) error {
	return &SpecError{Field: field, Reason: fmt.Sprintf(format, a...)}
}

// LinkSpec serializes a link class (capacity + propagation delay).
type LinkSpec struct {
	RateBps float64 `json:"rate_bps"`
	DelayNs int64   `json:"delay_ns"`
}

func (l *LinkSpec) netgraph(def netgraph.LinkSpec) netgraph.LinkSpec {
	if l == nil {
		return def
	}
	return netgraph.LinkSpec{BandwidthBps: l.RateBps, Delay: simtime.Duration(l.DelayNs)}
}

func (l *LinkSpec) validate(field string) error {
	if l == nil {
		return nil
	}
	if l.RateBps <= 0 || math.IsInf(l.RateBps, 0) || math.IsNaN(l.RateBps) {
		return specErr(field, "non-positive rate %g bps", l.RateBps)
	}
	if l.DelayNs < 0 {
		return specErr(field, "negative delay %d ns", l.DelayNs)
	}
	return nil
}

// Topology kinds.
const (
	TopoLinear     = "linear"
	TopoStar       = "star"
	TopoLeafSpine  = "leafspine"
	TopoFatTree    = "fattree"
	TopoRing       = "ring"
	TopoDumbbell   = "dumbbell"
	TopoRandom     = "random"
	TopoStarOfFats = "starfattree"
)

// TopoSpec names one of the deterministic topology builders and its
// parameters. Builders are referenced by name rather than shipping an
// arbitrary graph: every builder is seed-deterministic, so the spec
// stays small and the daemon and a local run construct the identical
// network (node IDs, names, link IDs and all).
type TopoSpec struct {
	// Kind selects the builder: linear|star|leafspine|fattree|ring|
	// dumbbell|random|starfattree.
	Kind string `json:"kind"`
	// N is the switch count (linear/ring/random), host count (star),
	// hosts per side (dumbbell), or tree count (starfattree).
	N int `json:"n,omitempty"`
	// Leaves/Spines/Hosts parameterize leafspine (Hosts = hosts per leaf).
	Leaves int `json:"leaves,omitempty"`
	Spines int `json:"spines,omitempty"`
	Hosts  int `json:"hosts,omitempty"`
	// K is the fat-tree arity.
	K int `json:"k,omitempty"`
	// P and Seed parameterize the random builder.
	P    float64 `json:"p,omitempty"`
	Seed int64   `json:"seed,omitempty"`
	// HostLink is the host-facing link class (default 1 Gbps / 50 µs);
	// Trunk the switch-switch class (default 10 Gbps / 50 µs). FatTree
	// uses HostLink for every link, Dumbbell uses Trunk as the
	// bottleneck.
	HostLink *LinkSpec `json:"host_link,omitempty"`
	Trunk    *LinkSpec `json:"trunk,omitempty"`
}

// Build constructs the topology.
func (t TopoSpec) Build() (*netgraph.Topology, error) {
	if err := t.HostLink.validate("topology.host_link"); err != nil {
		return nil, err
	}
	if err := t.Trunk.validate("topology.trunk"); err != nil {
		return nil, err
	}
	host := t.HostLink.netgraph(netgraph.Gig)
	trunk := t.Trunk.netgraph(netgraph.TenGig)
	pos := func(field string, v int) error {
		if v <= 0 {
			return specErr(field, "must be positive, got %d", v)
		}
		return nil
	}
	switch t.Kind {
	case TopoLinear:
		if err := pos("topology.n", t.N); err != nil {
			return nil, err
		}
		return netgraph.Linear(t.N, host, trunk), nil
	case TopoStar:
		if err := pos("topology.n", t.N); err != nil {
			return nil, err
		}
		return netgraph.Star(t.N, host), nil
	case TopoLeafSpine:
		for _, f := range []struct {
			name string
			v    int
		}{{"topology.leaves", t.Leaves}, {"topology.spines", t.Spines}, {"topology.hosts", t.Hosts}} {
			if err := pos(f.name, f.v); err != nil {
				return nil, err
			}
		}
		return netgraph.LeafSpine(t.Leaves, t.Spines, t.Hosts, host, trunk), nil
	case TopoFatTree:
		if t.K < 2 || t.K%2 != 0 {
			return nil, specErr("topology.k", "fat-tree arity must be even and >= 2, got %d", t.K)
		}
		return netgraph.FatTree(t.K, host), nil
	case TopoStarOfFats:
		if err := pos("topology.n", t.N); err != nil {
			return nil, err
		}
		if t.K < 2 || t.K%2 != 0 {
			return nil, specErr("topology.k", "fat-tree arity must be even and >= 2, got %d", t.K)
		}
		return netgraph.StarOfFatTrees(t.N, t.K, host), nil
	case TopoRing:
		if err := pos("topology.n", t.N); err != nil {
			return nil, err
		}
		return netgraph.Ring(t.N, host, trunk), nil
	case TopoDumbbell:
		if err := pos("topology.n", t.N); err != nil {
			return nil, err
		}
		return netgraph.Dumbbell(t.N, t.N, host, trunk), nil
	case TopoRandom:
		if err := pos("topology.n", t.N); err != nil {
			return nil, err
		}
		if t.P <= 0 || t.P > 1 {
			return nil, specErr("topology.p", "edge probability %g outside (0, 1]", t.P)
		}
		return netgraph.RandomConnected(t.N, t.P, t.Seed, host, trunk), nil
	case "":
		return nil, specErr("topology.kind", "missing")
	}
	return nil, specErr("topology.kind", "unknown kind %q", t.Kind)
}

// DemandSpec serializes one demand. Hosts are referenced by topology
// node name (stable across builder invocations); the flow key is derived
// from the canonical addressing plan, with the source port defaulting to
// 40000+index so every demand's key is distinct.
type DemandSpec struct {
	Src string `json:"src"`
	Dst string `json:"dst"`
	// StartNs is the arrival instant (for surge demands: relative to the
	// surge event time).
	StartNs int64 `json:"start_ns"`
	// SizeBits is the transfer volume ("+inf" with DurationNs set means
	// a constant-rate flow of that duration).
	SizeBits Float `json:"size_bits"`
	// RateBps is the offered rate ("+inf" for a backlogged TCP
	// transfer).
	RateBps Float `json:"rate_bps"`
	// DurationNs bounds open-ended flows.
	DurationNs int64 `json:"duration_ns,omitempty"`
	// TCP selects the TCP model rather than fluid CBR.
	TCP bool `json:"tcp,omitempty"`
	// SrcPort/DstPort override the defaults (40000+index, 80).
	SrcPort uint16 `json:"src_port,omitempty"`
	DstPort uint16 `json:"dst_port,omitempty"`
}

// demand resolves the spec against a topology. i is the demand's index
// within its containing list (workload or surge), used for the default
// source port.
func (d DemandSpec) demand(topo *netgraph.Topology, field string, i int) (traffic.Demand, error) {
	resolve := func(sub, name string) (netgraph.NodeID, error) {
		id, ok := topo.Lookup(name)
		if !ok {
			return 0, specErr(fmt.Sprintf("%s[%d].%s", field, i, sub), "unknown node %q", name)
		}
		if topo.Node(id).Kind != netgraph.KindHost {
			return 0, specErr(fmt.Sprintf("%s[%d].%s", field, i, sub), "node %q is not a host", name)
		}
		return id, nil
	}
	src, err := resolve("src", d.Src)
	if err != nil {
		return traffic.Demand{}, err
	}
	dst, err := resolve("dst", d.Dst)
	if err != nil {
		return traffic.Demand{}, err
	}
	if src == dst {
		return traffic.Demand{}, specErr(fmt.Sprintf("%s[%d]", field, i), "src and dst are both %q", d.Src)
	}
	if d.StartNs < 0 {
		return traffic.Demand{}, specErr(fmt.Sprintf("%s[%d].start_ns", field, i), "negative start %d", d.StartNs)
	}
	if d.DurationNs < 0 {
		return traffic.Demand{}, specErr(fmt.Sprintf("%s[%d].duration_ns", field, i), "negative duration %d", d.DurationNs)
	}
	size, rate := float64(d.SizeBits), float64(d.RateBps)
	if size <= 0 || math.IsNaN(size) {
		return traffic.Demand{}, specErr(fmt.Sprintf("%s[%d].size_bits", field, i), "non-positive size %g", size)
	}
	if rate <= 0 || math.IsNaN(rate) {
		return traffic.Demand{}, specErr(fmt.Sprintf("%s[%d].rate_bps", field, i), "non-positive rate %g", rate)
	}
	proto := header.ProtoUDP
	if d.TCP {
		proto = header.ProtoTCP
	}
	sport := d.SrcPort
	if sport == 0 {
		sport = uint16(40000 + i)
	}
	dport := d.DstPort
	if dport == 0 {
		dport = 80
	}
	dem := traffic.Demand{
		Src: src, Dst: dst,
		Start:    simtime.Time(d.StartNs),
		SizeBits: size, RateBps: rate,
		Duration: simtime.Duration(d.DurationNs),
		TCP:      d.TCP,
	}
	dem.Key = addr.FlowKeyBetween(src, dst, proto, sport, dport)
	return dem, nil
}

// Size distribution kinds.
const (
	SizePareto    = "pareto"
	SizeLogNormal = "lognormal"
	SizeFixed     = "fixed"
)

// SizeSpec serializes a flow-size distribution.
type SizeSpec struct {
	Kind string `json:"kind"` // pareto|lognormal|fixed
	// XMin/Alpha parameterize pareto.
	XMin  float64 `json:"x_min,omitempty"`
	Alpha float64 `json:"alpha,omitempty"`
	// Mu/Sigma parameterize lognormal.
	Mu    float64 `json:"mu,omitempty"`
	Sigma float64 `json:"sigma,omitempty"`
	// Bits is the fixed size.
	Bits float64 `json:"bits,omitempty"`
}

func (s SizeSpec) dist() (traffic.SizeDist, error) {
	switch s.Kind {
	case SizePareto:
		if s.XMin <= 0 || s.Alpha <= 0 {
			return nil, specErr("workload.poisson.size", "pareto needs positive x_min and alpha, got %g/%g", s.XMin, s.Alpha)
		}
		return traffic.Pareto{XMin: s.XMin, Alpha: s.Alpha}, nil
	case SizeLogNormal:
		if s.Sigma < 0 {
			return nil, specErr("workload.poisson.size", "negative sigma %g", s.Sigma)
		}
		return traffic.LogNormal{Mu: s.Mu, Sigma: s.Sigma}, nil
	case SizeFixed:
		if s.Bits <= 0 {
			return nil, specErr("workload.poisson.size", "non-positive fixed size %g", s.Bits)
		}
		return traffic.FixedSize(s.Bits), nil
	case "":
		return nil, specErr("workload.poisson.size.kind", "missing")
	}
	return nil, specErr("workload.poisson.size.kind", "unknown kind %q", s.Kind)
}

// PoissonSpec serializes a generated Poisson workload (seed-reproducible:
// the daemon regenerates the identical trace).
type PoissonSpec struct {
	Seed int64 `json:"seed"`
	// Lambda is the arrival rate in flows/second.
	Lambda float64 `json:"lambda"`
	// HorizonNs bounds arrival times.
	HorizonNs int64 `json:"horizon_ns"`
	// Size draws flow volumes.
	Size SizeSpec `json:"size"`
	// TCPFraction of flows use the TCP model; the rest are CBR at
	// CBRRateBps (generator default when 0).
	TCPFraction float64 `json:"tcp_fraction,omitempty"`
	CBRRateBps  float64 `json:"cbr_rate_bps,omitempty"`
}

// WorkloadSpec serializes the session workload: explicit demands, a
// generated Poisson trace, or both (explicit demands load first).
//
// Stream selects bounded-memory ingestion: the daemon feeds the engine
// through a traffic.Reader (see Reader) instead of materializing the
// whole trace, so arbitrarily long generated workloads run in O(1)
// input memory. Streamed sessions load demands in global start-time
// order; retained sessions load explicit demands first.
type WorkloadSpec struct {
	Demands []DemandSpec `json:"demands,omitempty"`
	Poisson *PoissonSpec `json:"poisson,omitempty"`
	Stream  bool         `json:"stream,omitempty"`
}

// config validates the Poisson parameters against a topology.
func (p *PoissonSpec) config(topo *netgraph.Topology) (traffic.PoissonConfig, error) {
	if p.Lambda <= 0 {
		return traffic.PoissonConfig{}, specErr("workload.poisson.lambda", "non-positive rate %g", p.Lambda)
	}
	if p.HorizonNs <= 0 {
		return traffic.PoissonConfig{}, specErr("workload.poisson.horizon_ns", "non-positive horizon %d", p.HorizonNs)
	}
	if p.TCPFraction < 0 || p.TCPFraction > 1 {
		return traffic.PoissonConfig{}, specErr("workload.poisson.tcp_fraction", "fraction %g outside [0, 1]", p.TCPFraction)
	}
	sizes, err := p.Size.dist()
	if err != nil {
		return traffic.PoissonConfig{}, err
	}
	return traffic.PoissonConfig{
		Hosts:       topo.Hosts(),
		Lambda:      p.Lambda,
		Horizon:     simtime.Duration(p.HorizonNs),
		Sizes:       sizes,
		TCPFraction: p.TCPFraction,
		CBRRateBps:  p.CBRRateBps,
	}, nil
}

// Trace materializes the workload against a topology.
func (w WorkloadSpec) Trace(topo *netgraph.Topology) (traffic.Trace, error) {
	var tr traffic.Trace
	for i, d := range w.Demands {
		dem, err := d.demand(topo, "workload.demands", i)
		if err != nil {
			return nil, err
		}
		tr = append(tr, dem)
	}
	if p := w.Poisson; p != nil {
		cfg, err := p.config(topo)
		if err != nil {
			return nil, err
		}
		tr = append(tr, traffic.NewGenerator(p.Seed).PoissonArrivals(cfg)...)
	}
	if len(tr) == 0 {
		return nil, specErr("workload", "empty (need demands or a poisson generator)")
	}
	return tr, nil
}

// Reader streams the workload against a topology in global start-time
// order: explicit demands (sorted) merged with the Poisson generator's
// arrival stream, one demand buffered per source — the bounded-memory
// counterpart of Trace for sessions submitted with Stream. A Poisson-only
// workload streams the byte-identical sequence Trace materializes.
func (w WorkloadSpec) Reader(topo *netgraph.Topology) (traffic.Reader, error) {
	var rs []traffic.Reader
	if len(w.Demands) > 0 {
		var tr traffic.Trace
		for i, d := range w.Demands {
			dem, err := d.demand(topo, "workload.demands", i)
			if err != nil {
				return nil, err
			}
			tr = append(tr, dem)
		}
		tr.Sort()
		rs = append(rs, traffic.TraceReader(tr))
	}
	if p := w.Poisson; p != nil {
		cfg, err := p.config(topo)
		if err != nil {
			return nil, err
		}
		rs = append(rs, traffic.NewPoissonReader(p.Seed, cfg))
	}
	if len(rs) == 0 {
		return nil, specErr("workload", "empty (need demands or a poisson generator)")
	}
	if len(rs) == 1 {
		return rs[0], nil
	}
	return traffic.MergeReaders(rs...), nil
}

// Scenario event kinds on the wire (the scenario.Kind strings).
const (
	EventLinkDown           = "link-down"
	EventLinkUp             = "link-up"
	EventSwitchFail         = "switch-fail"
	EventSwitchRestart      = "switch-restart"
	EventControllerDetach   = "controller-detach"
	EventControllerReattach = "controller-reattach"
	EventDemandSurge        = "demand-surge"
	EventLinkDegrade        = "link-degrade"
	EventLinkRestore        = "link-restore"
)

// Link-model kinds on the wire (the linkmodel Model names).
const (
	LinkModelBernoulli      = "bernoulli"
	LinkModelGilbertElliott = "gilbert-elliott"
	LinkModelAdaptiveRate   = "adaptive-rate"
)

// LinkModelSpec serializes one link-degradation model (the subject of
// link-degrade events and the options' default link model).
type LinkModelSpec struct {
	// Kind selects the model: bernoulli|gilbert-elliott|adaptive-rate.
	Kind string `json:"kind"`
	// Loss is the per-frame corruption probability (bernoulli).
	Loss float64 `json:"loss,omitempty"`
	// PGoodBad/PBadGood/LossGood/LossBad parameterize gilbert-elliott.
	PGoodBad float64 `json:"p_good_bad,omitempty"`
	PBadGood float64 `json:"p_bad_good,omitempty"`
	LossGood float64 `json:"loss_good,omitempty"`
	LossBad  float64 `json:"loss_bad,omitempty"`
	// Levels/Floor/EveryNs parameterize adaptive-rate.
	Levels  int     `json:"levels,omitempty"`
	Floor   float64 `json:"floor,omitempty"`
	EveryNs int64   `json:"every_ns,omitempty"`
}

// Model compiles the spec into a linkmodel.Model, validating its
// parameters; field names the spec location for error reporting.
func (s LinkModelSpec) Model(field string) (linkmodel.Model, error) {
	var m linkmodel.Model
	switch s.Kind {
	case LinkModelBernoulli:
		m = linkmodel.BernoulliLoss{P: s.Loss}
	case LinkModelGilbertElliott:
		m = linkmodel.GilbertElliott{
			PGoodBad: s.PGoodBad, PBadGood: s.PBadGood,
			LossGood: s.LossGood, LossBad: s.LossBad,
		}
	case LinkModelAdaptiveRate:
		m = linkmodel.AdaptiveRate{
			Levels: s.Levels, Floor: s.Floor, Every: simtime.Duration(s.EveryNs),
		}
	case "":
		return nil, specErr(field+".kind", "missing")
	default:
		return nil, specErr(field+".kind", "unknown kind %q", s.Kind)
	}
	if err := linkmodel.Validate(m); err != nil {
		return nil, specErr(field, "%v", err)
	}
	return m, nil
}

// LinkModelForSpec installs a model on one link, referenced by its
// endpoint node names like link events (OptionsSpec.LinkModelFor).
type LinkModelForSpec struct {
	LinkA string        `json:"link_a"`
	LinkB string        `json:"link_b"`
	Model LinkModelSpec `json:"model"`
}

// Resolve compiles the per-link entry against a topology; i indexes the
// entry within options.link_model_for for error reporting.
func (s LinkModelForSpec) Resolve(topo *netgraph.Topology, i int) (netgraph.LinkID, linkmodel.Model, error) {
	field := fmt.Sprintf("options.link_model_for[%d]", i)
	na, ok := topo.Lookup(s.LinkA)
	if !ok {
		return 0, nil, specErr(field+".link_a", "unknown node %q", s.LinkA)
	}
	nb, ok := topo.Lookup(s.LinkB)
	if !ok {
		return 0, nil, specErr(field+".link_b", "unknown node %q", s.LinkB)
	}
	for _, l := range topo.Links() {
		if (l.A == na && l.B == nb) || (l.A == nb && l.B == na) {
			m, err := s.Model.Model(field + ".model")
			if err != nil {
				return 0, nil, err
			}
			return l.ID, m, nil
		}
	}
	return 0, nil, specErr(field, "no link between %q and %q", s.LinkA, s.LinkB)
}

// EventSpec serializes one scenario timeline event. Links are referenced
// by their endpoint node names (builder-deterministic), switches by
// name.
type EventSpec struct {
	AtNs int64  `json:"at_ns"`
	Kind string `json:"kind"`
	// LinkA/LinkB name the endpoints of the subject link (link events).
	LinkA string `json:"link_a,omitempty"`
	LinkB string `json:"link_b,omitempty"`
	// Switch names the subject switch (switch events).
	Switch string `json:"switch,omitempty"`
	// Surge is the injected burst (demand-surge events); demand starts
	// are relative to AtNs.
	Surge []DemandSpec `json:"surge,omitempty"`
	// Model is the degradation installed by link-degrade events.
	Model *LinkModelSpec `json:"model,omitempty"`
}

// Timeline compiles the event specs into a scenario timeline, resolving
// names against the topology. The returned timeline still runs the
// engine-level Validate on Apply; this resolution step only turns names
// into IDs.
func Timeline(events []EventSpec, topo *netgraph.Topology) (*scenario.Timeline, error) {
	if len(events) == 0 {
		return nil, nil
	}
	tl := scenario.New()
	for i, e := range events {
		at := simtime.Time(e.AtNs)
		switch e.Kind {
		case EventLinkDown, EventLinkUp:
			link, err := lookupLink(topo, e.LinkA, e.LinkB, i)
			if err != nil {
				return nil, err
			}
			if e.Kind == EventLinkDown {
				tl.LinkDown(at, link)
			} else {
				tl.LinkUp(at, link)
			}
		case EventSwitchFail, EventSwitchRestart:
			sw, ok := topo.Lookup(e.Switch)
			if !ok {
				return nil, specErr(fmt.Sprintf("scenario[%d].switch", i), "unknown node %q", e.Switch)
			}
			if e.Kind == EventSwitchFail {
				tl.SwitchFail(at, sw)
			} else {
				tl.SwitchRestart(at, sw)
			}
		case EventLinkDegrade, EventLinkRestore:
			link, err := lookupLink(topo, e.LinkA, e.LinkB, i)
			if err != nil {
				return nil, err
			}
			if e.Kind == EventLinkRestore {
				tl.LinkRestore(at, link)
				break
			}
			if e.Model == nil {
				return nil, specErr(fmt.Sprintf("scenario[%d].model", i), "missing (link-degrade installs a model)")
			}
			m, err := e.Model.Model(fmt.Sprintf("scenario[%d].model", i))
			if err != nil {
				return nil, err
			}
			tl.LinkDegrade(at, link, m)
		case EventControllerDetach:
			tl.ControllerDetach(at)
		case EventControllerReattach:
			tl.ControllerReattach(at)
		case EventDemandSurge:
			var surge traffic.Trace
			for j, d := range e.Surge {
				dem, err := d.demand(topo, fmt.Sprintf("scenario[%d].surge", i), j)
				if err != nil {
					return nil, err
				}
				surge = append(surge, dem)
			}
			if len(surge) == 0 {
				return nil, specErr(fmt.Sprintf("scenario[%d].surge", i), "empty surge")
			}
			tl.Surge(at, surge)
		case "":
			return nil, specErr(fmt.Sprintf("scenario[%d].kind", i), "missing")
		default:
			return nil, specErr(fmt.Sprintf("scenario[%d].kind", i), "unknown kind %q", e.Kind)
		}
	}
	return tl, nil
}

func lookupLink(topo *netgraph.Topology, a, b string, i int) (netgraph.LinkID, error) {
	na, ok := topo.Lookup(a)
	if !ok {
		return 0, specErr(fmt.Sprintf("scenario[%d].link_a", i), "unknown node %q", a)
	}
	nb, ok := topo.Lookup(b)
	if !ok {
		return 0, specErr(fmt.Sprintf("scenario[%d].link_b", i), "unknown node %q", b)
	}
	for _, l := range topo.Links() {
		if (l.A == na && l.B == nb) || (l.A == nb && l.B == na) {
			return l.ID, nil
		}
	}
	return 0, specErr(fmt.Sprintf("scenario[%d]", i), "no link between %q and %q", a, b)
}

// Fidelity names on the wire.
const (
	FidelityFlow   = "flow"
	FidelityPacket = "packet"
	FidelityHybrid = "hybrid"
)

// Event-queue backend names on the wire (OptionsSpec.EventQueue).
const (
	EventQueueHeap     = "heap"
	EventQueueCalendar = "calendar"
	EventQueueWheel    = "wheel"
	EventQueueAuto     = "auto"
)

// Shard-balancing mode names on the wire (OptionsSpec.ShardBalancing).
const (
	BalanceUniform  = "uniform"
	BalanceWeighted = "weighted"
	BalanceSteal    = "steal"
)

// Controller app kinds.
const (
	AppProactiveMAC = "proactive-mac"
	AppReactiveMAC  = "reactive-mac"
	AppECMP         = "ecmp"
)

// AppSpec names one controller application of the chain.
type AppSpec struct {
	Kind string `json:"kind"` // proactive-mac|reactive-mac|ecmp
	// IdleTimeoutNs tunes reactive-mac rule eviction (0 = default).
	IdleTimeoutNs int64 `json:"idle_timeout_ns,omitempty"`
}

// OptionsSpec serializes the builder options of horse.New. Every field
// maps to exactly one functional option; the zero value of a field means
// "option not given", so defaults stay the façade's. The façade bridge
// (horse.SpecOptions) converts a spec to options and so inherits the
// builder's eager *BuildError validation — a bad option combination is
// rejected at Submit, as a wire error, before any engine state exists.
type OptionsSpec struct {
	// Fidelity selects the engine: flow (default) | packet | hybrid.
	Fidelity string `json:"fidelity,omitempty"`
	// Controller chains the named apps (empty = no controller).
	Controller []AppSpec `json:"controller,omitempty"`
	// Miss is the table-miss behavior: "" (default drop) | "drop" |
	// "controller".
	Miss string `json:"miss,omitempty"`
	// ControlLatencyNs delays switch↔controller messages (0 = default).
	ControlLatencyNs int64 `json:"control_latency_ns,omitempty"`
	// TCPRTTNs/TCPMSS/TCPInitialWindow tune the fluid TCP model (all
	// zero = option not given).
	TCPRTTNs         int64 `json:"tcp_rtt_ns,omitempty"`
	TCPMSS           int   `json:"tcp_mss,omitempty"`
	TCPInitialWindow int   `json:"tcp_initial_window,omitempty"`
	// StatsEveryNs samples link utilization at this period.
	StatsEveryNs int64 `json:"stats_every_ns,omitempty"`
	// RateEpsilon sets the fair-share reschedule threshold (pointer so 0
	// is expressible).
	RateEpsilon *float64 `json:"rate_epsilon,omitempty"`
	// FullRecompute disables incremental fair-share solving.
	FullRecompute bool `json:"full_recompute,omitempty"`
	// CalendarQueue selects the calendar event queue.
	//
	// Deprecated: set EventQueue to "calendar" instead. A non-empty
	// EventQueue wins validation (mismatched combinations are rejected).
	CalendarQueue bool `json:"calendar_queue,omitempty"`
	// EventQueue selects the kernel's event-queue backend: "" (default
	// heap) | "heap" | "calendar" | "wheel" | "auto". Results are
	// byte-identical across backends; only run time differs.
	EventQueue string `json:"event_queue,omitempty"`
	// Shards enables multi-core execution.
	Shards int `json:"shards,omitempty"`
	// ShardWorkers bounds the shard worker pool (packet engine).
	ShardWorkers *int `json:"shard_workers,omitempty"`
	// ShardBalancing selects the sharded packet engine's load balancing:
	// "" (default uniform) | "uniform" | "weighted" | "steal". Results are
	// byte-identical across modes; only wall-clock time differs.
	ShardBalancing string `json:"shard_balancing,omitempty"`
	// QueuePackets sets the drop-tail queue capacity (pointer so 0 is
	// expressible).
	QueuePackets *int `json:"queue_packets,omitempty"`
	// RTOMinNs sets the packet engine's minimum RTO.
	RTOMinNs *int64 `json:"rto_min_ns,omitempty"`
	// PacketFraction flags ~p of demands for packet-level simulation
	// (hybrid).
	PacketFraction *float64 `json:"packet_fraction,omitempty"`
	// LinkModel installs a degradation model on every link from the
	// start of the run (WithLinkModel).
	LinkModel *LinkModelSpec `json:"link_model,omitempty"`
	// LinkModelFor installs per-link models, layered after LinkModel
	// (WithLinkModelFor); links are referenced by endpoint node names.
	LinkModelFor []LinkModelForSpec `json:"link_model_for,omitempty"`
	// LinkModelSeed seeds the models' corruption streams
	// (WithLinkModelSeed; 0 means the default stream).
	LinkModelSeed uint64 `json:"link_model_seed,omitempty"`
}

// Workers is the session's worker-budget cost: how many workers of the
// daemon's shared budget the session occupies while running. A sharded
// packet engine costs its worker-pool width (ShardWorkers when bounded,
// else one per shard); a sharded flow engine costs its settle-scan
// fan-out; everything else costs one.
func (o OptionsSpec) Workers() int {
	n := o.Shards
	if o.Fidelity == FidelityPacket && o.ShardWorkers != nil && *o.ShardWorkers > 0 {
		n = *o.ShardWorkers
	}
	if n < 1 {
		n = 1
	}
	return n
}
