package wire

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
)

// Client is a horse-wire client over one connection: synchronous calls
// (Submit, Status, List, Cancel, Retire, Watch) multiplexed with
// server-push session streams. It is safe for concurrent use; one
// background goroutine reads frames and routes responses to callers and
// events to their session's Stream.
type Client struct {
	conn    net.Conn
	br      *bufio.Reader
	welcome Welcome

	writeMu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *Frame
	streams map[string]*Stream
	readErr error
}

// Dial connects and performs the Hello handshake offering every version
// this package speaks. network/addr are net.Dial arguments ("unix",
// "/run/horsed.sock" or "tcp", "host:port").
func Dial(network, addr string) (*Client, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	c, err := NewClient(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// DialAddr dials a scheme-prefixed address: "unix:/path/to.sock" or
// "tcp:host:port" (a bare path containing a slash counts as unix,
// anything else as tcp).
func DialAddr(addr string) (*Client, error) {
	switch {
	case strings.HasPrefix(addr, "unix:"):
		return Dial("unix", strings.TrimPrefix(addr, "unix:"))
	case strings.HasPrefix(addr, "tcp:"):
		return Dial("tcp", strings.TrimPrefix(addr, "tcp:"))
	case strings.Contains(addr, "/"):
		return Dial("unix", addr)
	default:
		return Dial("tcp", addr)
	}
}

// NewClient performs the handshake on an established connection and
// starts the frame reader.
func NewClient(conn net.Conn) (*Client, error) {
	c := &Client{
		conn:    conn,
		br:      bufio.NewReader(conn),
		pending: map[uint64]chan *Frame{},
		streams: map[string]*Stream{},
	}
	params, _ := json.Marshal(HelloParams{Versions: Versions})
	hello := Frame{V: Versions[len(Versions)-1], ID: 1, Method: MethodHello, Params: params}
	c.nextID = 1
	if err := c.write(&hello); err != nil {
		return nil, err
	}
	// The handshake response is read synchronously, before the reader
	// goroutine exists: nothing else can arrive first.
	resp, err := c.readFrame()
	if err != nil {
		return nil, fmt.Errorf("wire: handshake: %w", err)
	}
	if resp.Error != nil {
		return nil, resp.Error
	}
	if err := json.Unmarshal(resp.Result, &c.welcome); err != nil {
		return nil, fmt.Errorf("wire: handshake: %w", err)
	}
	go c.readLoop()
	return c, nil
}

// Version returns the negotiated protocol version.
func (c *Client) Version() string { return c.welcome.Version }

// Server returns the server identity from the handshake.
func (c *Client) Server() string { return c.welcome.Server }

// Close tears the connection down; pending calls and open streams fail.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) write(f *Frame) error {
	b, err := json.Marshal(f)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	_, err = c.conn.Write(b)
	return err
}

func (c *Client) readFrame() (*Frame, error) {
	line, err := c.br.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	var f Frame
	if err := json.Unmarshal(line, &f); err != nil {
		return nil, fmt.Errorf("wire: bad frame: %w", err)
	}
	return &f, nil
}

func (c *Client) readLoop() {
	for {
		f, err := c.readFrame()
		if err != nil {
			c.fail(err)
			return
		}
		switch {
		case f.ID != 0:
			c.mu.Lock()
			ch := c.pending[f.ID]
			delete(c.pending, f.ID)
			c.mu.Unlock()
			if ch != nil {
				ch <- f
			}
		case f.Event != "" && f.Session != "":
			c.mu.Lock()
			st := c.ensureStreamLocked(f.Session)
			c.mu.Unlock()
			st.push(f)
		}
	}
}

func (c *Client) fail(err error) {
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	c.mu.Lock()
	c.readErr = err
	pend := c.pending
	c.pending = map[uint64]chan *Frame{}
	streams := c.streams
	c.mu.Unlock()
	for _, ch := range pend {
		ch <- &Frame{Error: &Error{Code: CodeInternal, Message: err.Error()}}
	}
	for _, st := range streams {
		st.fail(err)
	}
}

// ensureStreamLocked returns the session's stream, creating a buffering
// one if none exists yet — events that race ahead of the caller
// attaching (the server pushes as soon as the Submit response is out)
// are buffered, never lost.
func (c *Client) ensureStreamLocked(session string) *Stream {
	st := c.streams[session]
	if st == nil {
		st = newStream(session)
		c.streams[session] = st
	}
	return st
}

// Call performs one raw request. Most callers want the typed wrappers.
func (c *Client) Call(method string, params, result interface{}) error {
	var raw json.RawMessage
	if params != nil {
		b, err := json.Marshal(params)
		if err != nil {
			return err
		}
		raw = b
	}
	c.mu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return err
	}
	c.nextID++
	id := c.nextID
	ch := make(chan *Frame, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	if err := c.write(&Frame{V: c.welcome.Version, ID: id, Method: method, Params: raw}); err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return err
	}
	resp := <-ch
	if resp.Error != nil {
		return resp.Error
	}
	if result != nil {
		if err := json.Unmarshal(resp.Result, result); err != nil {
			return fmt.Errorf("wire: %s result: %w", method, err)
		}
	}
	return nil
}

// Submit submits a session. When p.Stream is set, the returned Stream
// carries the session's push events (Progress, Record, Done); otherwise
// it is nil and a later Watch can replay the retained results.
func (c *Client) Submit(p SubmitParams) (SessionStatus, *Stream, error) {
	var st SessionStatus
	if err := c.Call(MethodSubmit, p, &st); err != nil {
		return SessionStatus{}, nil, err
	}
	if !p.Stream {
		return st, nil, nil
	}
	c.mu.Lock()
	stream := c.ensureStreamLocked(st.Session)
	c.mu.Unlock()
	return st, stream, nil
}

// Status inspects one session.
func (c *Client) Status(session string) (SessionStatus, error) {
	var st SessionStatus
	err := c.Call(MethodStatus, SessionParams{Session: session}, &st)
	return st, err
}

// List lists every session in submission order.
func (c *Client) List() ([]SessionStatus, error) {
	var res ListResult
	err := c.Call(MethodList, struct{}{}, &res)
	return res.Sessions, err
}

// Cancel cancels a queued or running session and returns its post-cancel
// status.
func (c *Client) Cancel(session string) (SessionStatus, error) {
	var st SessionStatus
	err := c.Call(MethodCancel, SessionParams{Session: session}, &st)
	return st, err
}

// Retire removes a terminal session from the daemon.
func (c *Client) Retire(session string) (SessionStatus, error) {
	var st SessionStatus
	err := c.Call(MethodRetire, SessionParams{Session: session}, &st)
	return st, err
}

// Watch subscribes to a session's push events. For a finished session
// that retained its results, the stream replays every record and closes
// with the Done event.
func (c *Client) Watch(session string) (SessionStatus, *Stream, error) {
	var st SessionStatus
	if err := c.Call(MethodWatch, SessionParams{Session: session}, &st); err != nil {
		return SessionStatus{}, nil, err
	}
	c.mu.Lock()
	stream := c.ensureStreamLocked(session)
	c.mu.Unlock()
	stream.rearm()
	return st, stream, nil
}

// Event is one element of a session stream.
type Event struct {
	// Kind is EventProgress, EventRecord, or EventDone.
	Kind     string
	Progress *ProgressEvent
	Record   *Record
	Done     *DoneEvent
}

// Stream is the ordered event stream of one session on one connection.
// Events buffer client-side until consumed, so a slow consumer never
// loses records.
type Stream struct {
	session string

	mu   sync.Mutex
	cond *sync.Cond
	buf  []Event
	done bool
	err  error
}

func newStream(session string) *Stream {
	s := &Stream{session: session}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Session returns the stream's session ID.
func (s *Stream) Session() string { return s.session }

func (s *Stream) push(f *Frame) {
	ev := Event{Kind: f.Event}
	switch f.Event {
	case EventProgress:
		ev.Progress = &ProgressEvent{}
		if json.Unmarshal(f.Data, ev.Progress) != nil {
			return
		}
	case EventRecord:
		ev.Record = &Record{}
		if json.Unmarshal(f.Data, ev.Record) != nil {
			return
		}
	case EventDone:
		ev.Done = &DoneEvent{}
		if json.Unmarshal(f.Data, ev.Done) != nil {
			return
		}
	default:
		return
	}
	s.mu.Lock()
	s.buf = append(s.buf, ev)
	if ev.Kind == EventDone {
		s.done = true
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// rearm clears a consumed Done marker so a repeated Watch on the same
// connection can receive the replayed stream. (Each Watch should be
// drained before the next; interleaved watches of one session on one
// connection are not supported.)
func (s *Stream) rearm() {
	s.mu.Lock()
	if s.done && len(s.buf) == 0 {
		s.done = false
	}
	s.mu.Unlock()
}

func (s *Stream) fail(err error) {
	s.mu.Lock()
	if !s.done && s.err == nil {
		s.err = err
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Recv returns the next event, blocking until one arrives. After the
// Done event has been consumed it returns io.EOF; a connection failure
// before Done surfaces as that error.
func (s *Stream) Recv() (Event, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if len(s.buf) > 0 {
			ev := s.buf[0]
			s.buf = s.buf[1:]
			return ev, nil
		}
		if s.done {
			return Event{}, io.EOF
		}
		if s.err != nil {
			return Event{}, s.err
		}
		s.cond.Wait()
	}
}

// Drain consumes the stream to completion, invoking the callbacks per
// event kind (nil callbacks skip), and returns the Done event.
func (s *Stream) Drain(onProgress func(ProgressEvent), onRecord func(Record)) (DoneEvent, error) {
	for {
		ev, err := s.Recv()
		if err == io.EOF {
			return DoneEvent{}, io.ErrUnexpectedEOF
		}
		if err != nil {
			return DoneEvent{}, err
		}
		switch ev.Kind {
		case EventProgress:
			if onProgress != nil {
				onProgress(*ev.Progress)
			}
		case EventRecord:
			if onRecord != nil {
				onRecord(*ev.Record)
			}
		case EventDone:
			return *ev.Done, nil
		}
	}
}
