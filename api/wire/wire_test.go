package wire

import (
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"horse/internal/netgraph"
	"horse/internal/simtime"
	"horse/internal/stats"
)

func TestNegotiate(t *testing.T) {
	cases := []struct {
		name           string
		client, server []string
		want           string
		wantErr        bool
	}{
		{"exact", []string{V1}, []string{V1}, V1, false},
		{"client newer", []string{"horse-wire/v2", V1}, []string{V1}, V1, false},
		{"server newer", []string{V1}, []string{"horse-wire/v2", V1}, V1, false},
		// A mutual version this binary does not speak can never win, even
		// if both peers offer it.
		{"unknown mutual version loses", []string{"horse-wire/v2", V1}, []string{V1, "horse-wire/v2"}, V1, false},
		{"no overlap", []string{"horse-wire/v9"}, []string{V1}, "", true},
		{"empty client", nil, []string{V1}, "", true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := Negotiate(c.client, c.server)
			if c.wantErr {
				if err == nil {
					t.Fatalf("Negotiate(%v, %v) = %q, want error", c.client, c.server, got)
				}
				var verr *VersionError
				if !errors.As(err, &verr) {
					t.Fatalf("error %v is not a *VersionError", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("Negotiate: %v", err)
			}
			if got != c.want {
				t.Fatalf("Negotiate(%v, %v) = %q, want %q", c.client, c.server, got, c.want)
			}
		})
	}
}

func TestFloatRoundTrip(t *testing.T) {
	values := []float64{0, 1, -1, 0.1, 1e-300, 1e300, 12345.6789, math.MaxFloat64,
		math.SmallestNonzeroFloat64, math.Inf(1), math.Inf(-1)}
	for _, v := range values {
		b, err := json.Marshal(Float(v))
		if err != nil {
			t.Fatalf("marshal %g: %v", v, err)
		}
		var got Float
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if float64(got) != v {
			t.Fatalf("round trip %g -> %s -> %g", v, b, float64(got))
		}
	}
	var nan Float
	if err := json.Unmarshal([]byte(`"nan"`), &nan); err != nil || !math.IsNaN(float64(nan)) {
		t.Fatalf(`"nan" decoded to %g, err %v`, float64(nan), err)
	}
	var bad Float
	if err := json.Unmarshal([]byte(`"seven"`), &bad); err == nil {
		t.Fatal(`"seven" decoded without error`)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	in := stats.FlowRecord{
		ID: 7, Arrival: 1000, End: simtime.Time(3 * simtime.Second),
		SizeBits: math.Inf(1), SentBits: 8.125e6,
		Completed: false, Outcome: "dropped", PathLen: 5, Punts: 2,
	}
	b, err := json.Marshal(FromRecord(in))
	if err != nil {
		t.Fatal(err)
	}
	var rec Record
	if err := json.Unmarshal(b, &rec); err != nil {
		t.Fatal(err)
	}
	if got := rec.FlowRecord(); got != in {
		t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", in, got)
	}
}

func TestTopoSpecBuild(t *testing.T) {
	good := []TopoSpec{
		{Kind: TopoLinear, N: 3},
		{Kind: TopoStar, N: 4},
		{Kind: TopoLeafSpine, Leaves: 2, Spines: 2, Hosts: 2},
		{Kind: TopoFatTree, K: 4},
		{Kind: TopoRing, N: 4},
		{Kind: TopoDumbbell, N: 2},
		{Kind: TopoRandom, N: 6, P: 0.5, Seed: 1},
	}
	for _, spec := range good {
		if _, err := spec.Build(); err != nil {
			t.Errorf("Build(%+v): %v", spec, err)
		}
	}
	bad := []TopoSpec{
		{},
		{Kind: "mesh"},
		{Kind: TopoLinear},
		{Kind: TopoFatTree, K: 3},
		{Kind: TopoRandom, N: 6, P: 1.5},
		{Kind: TopoLinear, N: 2, HostLink: &LinkSpec{RateBps: -1}},
	}
	for _, spec := range bad {
		_, err := spec.Build()
		if err == nil {
			t.Errorf("Build(%+v) succeeded, want *SpecError", spec)
			continue
		}
		var serr *SpecError
		if !errors.As(err, &serr) {
			t.Errorf("Build(%+v) error %v is not a *SpecError", spec, err)
		}
	}
}

func TestTopoSpecDeterministic(t *testing.T) {
	spec := TopoSpec{Kind: TopoRandom, N: 10, P: 0.4, Seed: 42}
	a, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := spec.Build()
	if a.NumLinks() != b.NumLinks() || len(a.Hosts()) != len(b.Hosts()) {
		t.Fatalf("same spec built different topologies: %d/%d links, %d/%d hosts",
			a.NumLinks(), b.NumLinks(), len(a.Hosts()), len(b.Hosts()))
	}
}

func TestWorkloadSpecTrace(t *testing.T) {
	topo, err := TopoSpec{Kind: TopoLinear, N: 2}.Build()
	if err != nil {
		t.Fatal(err)
	}

	w := WorkloadSpec{Demands: []DemandSpec{
		{Src: "h0", Dst: "h1", SizeBits: 8e5, RateBps: Float(math.Inf(1)), TCP: true},
		{Src: "h1", Dst: "h0", StartNs: 1e6, SizeBits: 8e5, RateBps: 1e7},
	}}
	tr, err := w.Trace(topo)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 2 {
		t.Fatalf("got %d demands, want 2", len(tr))
	}
	if tr[0].Key == tr[1].Key {
		t.Fatal("default ports collided: both demands share a flow key")
	}
	if !math.IsInf(tr[0].RateBps, 1) || !tr[0].TCP {
		t.Fatalf("demand 0 lost its backlogged-TCP shape: %+v", tr[0])
	}
	if host := topo.Node(tr[0].Src); host.Kind != netgraph.KindHost {
		t.Fatalf("src resolved to non-host %+v", host)
	}

	// Generated workloads are seed-reproducible.
	p := WorkloadSpec{Poisson: &PoissonSpec{
		Seed: 3, Lambda: 500, HorizonNs: int64(simtime.Second),
		Size: SizeSpec{Kind: SizeFixed, Bits: 1e5}, TCPFraction: 0.5,
	}}
	t1, err := p.Trace(topo)
	if err != nil {
		t.Fatal(err)
	}
	t2, _ := p.Trace(topo)
	if len(t1) == 0 || len(t1) != len(t2) {
		t.Fatalf("poisson regeneration differs: %d vs %d demands", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("poisson demand %d differs across regenerations", i)
		}
	}

	bad := []WorkloadSpec{
		{},
		{Demands: []DemandSpec{{Src: "h0", Dst: "nope", SizeBits: 1, RateBps: 1}}},
		{Demands: []DemandSpec{{Src: "h0", Dst: "s0", SizeBits: 1, RateBps: 1}}},
		{Demands: []DemandSpec{{Src: "h0", Dst: "h0", SizeBits: 1, RateBps: 1}}},
		{Demands: []DemandSpec{{Src: "h0", Dst: "h1", SizeBits: -1, RateBps: 1}}},
		{Poisson: &PoissonSpec{Lambda: 10, HorizonNs: 1, Size: SizeSpec{Kind: "zipf"}}},
	}
	for i, w := range bad {
		if _, err := w.Trace(topo); err == nil {
			t.Errorf("bad workload %d accepted", i)
		}
	}
}

func TestTimelineCompile(t *testing.T) {
	topo, err := TopoSpec{Kind: TopoLeafSpine, Leaves: 2, Spines: 2, Hosts: 1}.Build()
	if err != nil {
		t.Fatal(err)
	}
	tl, err := Timeline([]EventSpec{
		{AtNs: 1e9, Kind: EventLinkDown, LinkA: "leaf0", LinkB: "spine0"},
		{AtNs: 2e9, Kind: EventLinkUp, LinkA: "spine0", LinkB: "leaf0"}, // reversed endpoints resolve too
		{AtNs: 3e9, Kind: EventSwitchFail, Switch: "spine1"},
		{AtNs: 4e9, Kind: EventSwitchRestart, Switch: "spine1"},
		{AtNs: 5e9, Kind: EventControllerDetach},
		{AtNs: 6e9, Kind: EventControllerReattach},
		{AtNs: 7e9, Kind: EventDemandSurge, Surge: []DemandSpec{
			{Src: "h0", Dst: "h1", SizeBits: 1e5, RateBps: 1e6},
		}},
	}, topo)
	if err != nil {
		t.Fatal(err)
	}
	if tl == nil || len(tl.Events()) != 7 {
		t.Fatalf("timeline = %v, want 7 events", tl)
	}

	if tl, err := Timeline(nil, topo); tl != nil || err != nil {
		t.Fatalf("empty scenario => (%v, %v), want (nil, nil)", tl, err)
	}

	bad := [][]EventSpec{
		{{Kind: "reboot-universe"}},
		{{Kind: EventLinkDown, LinkA: "leaf0", LinkB: "leaf1"}}, // no such link
		{{Kind: EventSwitchFail, Switch: "nope"}},
		{{Kind: EventDemandSurge}},
	}
	for i, evs := range bad {
		if _, err := Timeline(evs, topo); err == nil {
			t.Errorf("bad scenario %d accepted", i)
		}
	}
}

func TestOptionsSpecWorkers(t *testing.T) {
	two := 2
	cases := []struct {
		o    OptionsSpec
		want int
	}{
		{OptionsSpec{}, 1},
		{OptionsSpec{Shards: 4}, 4},
		{OptionsSpec{Fidelity: FidelityPacket, Shards: 8, ShardWorkers: &two}, 2},
		{OptionsSpec{Fidelity: FidelityFlow, Shards: 8, ShardWorkers: &two}, 8},
	}
	for _, c := range cases {
		if got := c.o.Workers(); got != c.want {
			t.Errorf("Workers(%+v) = %d, want %d", c.o, got, c.want)
		}
	}
}

// TestV1Fixtures replays checked-in v1 frames: every fixture must keep
// decoding, and its payload must keep carrying the same values. This is
// the compatibility gate for the frozen v1 wire format — if a struct
// change breaks one of these, it needs a v2, not a fixture update.
func TestV1Fixtures(t *testing.T) {
	decode := func(t *testing.T, name string) Frame {
		t.Helper()
		b, err := os.ReadFile(filepath.Join("testdata", "v1", name))
		if err != nil {
			t.Fatal(err)
		}
		var f Frame
		if err := json.Unmarshal(b, &f); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if f.V != V1 {
			t.Fatalf("%s: frame version %q, want %q", name, f.V, V1)
		}
		return f
	}

	t.Run("hello", func(t *testing.T) {
		f := decode(t, "hello.json")
		if f.Method != MethodHello || f.ID != 1 {
			t.Fatalf("frame %+v", f)
		}
		var p HelloParams
		if err := json.Unmarshal(f.Params, &p); err != nil {
			t.Fatal(err)
		}
		if len(p.Versions) != 1 || p.Versions[0] != V1 {
			t.Fatalf("versions %v", p.Versions)
		}
	})

	t.Run("welcome", func(t *testing.T) {
		f := decode(t, "welcome.json")
		var w Welcome
		if err := json.Unmarshal(f.Result, &w); err != nil {
			t.Fatal(err)
		}
		if w.Version != V1 {
			t.Fatalf("welcome %+v", w)
		}
	})

	t.Run("submit", func(t *testing.T) {
		f := decode(t, "submit.json")
		var p SubmitParams
		if err := json.Unmarshal(f.Params, &p); err != nil {
			t.Fatal(err)
		}
		if p.Name != "exp1" || !p.Stream {
			t.Fatalf("params %+v", p)
		}
		spec := p.Spec
		if spec.Topology.Kind != TopoLeafSpine || spec.UntilNs != 5e9 {
			t.Fatalf("spec %+v", spec)
		}
		if len(spec.Workload.Demands) != 2 || spec.Workload.Poisson == nil {
			t.Fatalf("workload %+v", spec.Workload)
		}
		if !math.IsInf(float64(spec.Workload.Demands[0].RateBps), 1) {
			t.Fatal("demand 0 lost its +inf rate")
		}
		if !math.IsInf(float64(spec.Workload.Demands[1].SizeBits), 1) {
			t.Fatal("demand 1 lost its +inf size")
		}
		if len(spec.Scenario) != 2 || spec.Scenario[0].Kind != EventLinkDown {
			t.Fatalf("scenario %+v", spec.Scenario)
		}
		// The fixture spec must stay buildable end to end.
		topo, err := spec.Topology.Build()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := spec.Workload.Trace(topo); err != nil {
			t.Fatal(err)
		}
		if _, err := Timeline(spec.Scenario, topo); err != nil {
			t.Fatal(err)
		}
	})

	// A v1 submit carrying the event-queue backend selection (added after
	// the first v1 cut; additive, so old daemons ignore it and old clients
	// never send it).
	t.Run("submit-event-queue", func(t *testing.T) {
		f := decode(t, "submit-event-queue.json")
		var p SubmitParams
		if err := json.Unmarshal(f.Params, &p); err != nil {
			t.Fatal(err)
		}
		if p.Spec.Options.EventQueue != EventQueueWheel {
			t.Fatalf("event_queue = %q, want %q", p.Spec.Options.EventQueue, EventQueueWheel)
		}
		if _, err := p.Spec.Topology.Build(); err != nil {
			t.Fatal(err)
		}
	})

	// A v1 submit carrying link-degradation models: a default Bernoulli
	// model, a per-link adaptive-rate override, a seed, and a
	// degrade/restore scenario pair (additive v1 fields).
	t.Run("submit-link-model", func(t *testing.T) {
		f := decode(t, "submit-link-model.json")
		var p SubmitParams
		if err := json.Unmarshal(f.Params, &p); err != nil {
			t.Fatal(err)
		}
		spec := p.Spec
		o := spec.Options
		if o.LinkModel == nil || o.LinkModel.Kind != LinkModelBernoulli || o.LinkModel.Loss != 0.005 {
			t.Fatalf("link_model %+v", o.LinkModel)
		}
		if o.LinkModelSeed != 42 {
			t.Fatalf("link_model_seed = %d, want 42", o.LinkModelSeed)
		}
		if len(o.LinkModelFor) != 1 || o.LinkModelFor[0].Model.Kind != LinkModelAdaptiveRate {
			t.Fatalf("link_model_for %+v", o.LinkModelFor)
		}
		if len(spec.Scenario) != 2 ||
			spec.Scenario[0].Kind != EventLinkDegrade || spec.Scenario[0].Model == nil ||
			spec.Scenario[1].Kind != EventLinkRestore {
			t.Fatalf("scenario %+v", spec.Scenario)
		}
		if spec.Scenario[0].Model.PBadGood != 0.2 {
			t.Fatalf("degrade model %+v", spec.Scenario[0].Model)
		}
		// The fixture must stay compilable end to end: models, per-link
		// resolution, and the scenario timeline.
		topo, err := spec.Topology.Build()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := o.LinkModel.Model("options.link_model"); err != nil {
			t.Fatal(err)
		}
		if _, _, err := o.LinkModelFor[0].Resolve(topo, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := Timeline(spec.Scenario, topo); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("submit-result", func(t *testing.T) {
		f := decode(t, "submit-result.json")
		var st SessionStatus
		if err := json.Unmarshal(f.Result, &st); err != nil {
			t.Fatal(err)
		}
		if st.Session != "s1" || st.State != StateQueued || st.Workers != 1 {
			t.Fatalf("status %+v", st)
		}
	})

	t.Run("progress-event", func(t *testing.T) {
		f := decode(t, "progress-event.json")
		if f.Event != EventProgress || f.Session != "s1" {
			t.Fatalf("frame %+v", f)
		}
		var p ProgressEvent
		if err := json.Unmarshal(f.Data, &p); err != nil {
			t.Fatal(err)
		}
		if p.NowNs != 1500000000 || p.Events != 42137 {
			t.Fatalf("progress %+v", p)
		}
	})

	t.Run("record-event", func(t *testing.T) {
		f := decode(t, "record-event.json")
		var r Record
		if err := json.Unmarshal(f.Data, &r); err != nil {
			t.Fatal(err)
		}
		if r.ID != 3 || !math.IsInf(float64(r.SizeBits), 1) || r.Outcome != "completed" {
			t.Fatalf("record %+v", r)
		}
	})

	t.Run("done-event", func(t *testing.T) {
		f := decode(t, "done-event.json")
		var d DoneEvent
		if err := json.Unmarshal(f.Data, &d); err != nil {
			t.Fatal(err)
		}
		if d.State != StateDone || d.Summary == nil {
			t.Fatalf("done %+v", d)
		}
		if d.Summary.Counters.FlowsCompleted != 100 || d.Summary.FCT == nil || d.Summary.FCT.N != 100 {
			t.Fatalf("summary %+v", d.Summary)
		}
	})

	t.Run("error", func(t *testing.T) {
		f := decode(t, "error-queue-full.json")
		if f.Error == nil || f.Error.Code != CodeQueueFull {
			t.Fatalf("frame %+v", f)
		}
	})
}
