package wire

import (
	"encoding/json"
	"fmt"
	"math"
)

// Float is a float64 that survives JSON: the demand model uses ±Inf for
// backlogged rates and open-ended sizes, which encoding/json rejects, so
// the wire encodes non-finite values as the strings "+inf", "-inf" and
// "nan". Finite values are plain JSON numbers and round-trip exactly
// (Go emits the shortest representation that parses back to the same
// float64), which is what keeps wire-delivered records byte-identical to
// an in-process run.
type Float float64

// MarshalJSON implements json.Marshaler.
func (f Float) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsInf(v, 1):
		return []byte(`"+inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-inf"`), nil
	case math.IsNaN(v):
		return []byte(`"nan"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *Float) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		switch s {
		case "+inf", "inf":
			*f = Float(math.Inf(1))
		case "-inf":
			*f = Float(math.Inf(-1))
		case "nan":
			*f = Float(math.NaN())
		default:
			return fmt.Errorf("wire: invalid float string %q", s)
		}
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = Float(v)
	return nil
}
