package wire

import (
	"horse/internal/metrics"
	"horse/internal/simtime"
	"horse/internal/stats"
)

// Record is the wire encoding of one finalized flow record — a faithful,
// lossless mirror of stats.FlowRecord (times as virtual nanoseconds,
// possibly-infinite volumes as Float), so a record streamed over the
// wire decodes back byte-identical to the in-process value.
type Record struct {
	ID        int64  `json:"id"`
	ArrivalNs int64  `json:"arrival_ns"`
	EndNs     int64  `json:"end_ns"`
	SizeBits  Float  `json:"size_bits"`
	SentBits  Float  `json:"sent_bits"`
	Completed bool   `json:"completed"`
	Outcome   string `json:"outcome"`
	PathLen   int    `json:"path_len"`
	Punts     int    `json:"punts"`
}

// FromRecord encodes a stats.FlowRecord.
func FromRecord(r stats.FlowRecord) Record {
	return Record{
		ID:        r.ID,
		ArrivalNs: int64(r.Arrival),
		EndNs:     int64(r.End),
		SizeBits:  Float(r.SizeBits),
		SentBits:  Float(r.SentBits),
		Completed: r.Completed,
		Outcome:   r.Outcome,
		PathLen:   r.PathLen,
		Punts:     r.Punts,
	}
}

// FlowRecord decodes back to the in-process value.
func (r Record) FlowRecord() stats.FlowRecord {
	return stats.FlowRecord{
		ID:        r.ID,
		Arrival:   simtime.Time(r.ArrivalNs),
		End:       simtime.Time(r.EndNs),
		SizeBits:  float64(r.SizeBits),
		SentBits:  float64(r.SentBits),
		Completed: r.Completed,
		Outcome:   r.Outcome,
		PathLen:   r.PathLen,
		Punts:     r.Punts,
	}
}

// Counters mirrors stats.Counters on the wire.
type Counters struct {
	FlowsStarted   uint64 `json:"flows_started"`
	FlowsCompleted uint64 `json:"flows_completed"`
	FlowsDropped   uint64 `json:"flows_dropped"`
	FlowsLooped    uint64 `json:"flows_looped"`
	FlowsStuck     uint64 `json:"flows_stuck"`
	PacketIns      uint64 `json:"packet_ins"`
	FlowMods       uint64 `json:"flow_mods"`
	RateChanges    uint64 `json:"rate_changes"`
	EventsRun      uint64 `json:"events_run"`
	PathChanges    uint64 `json:"path_changes"`
	PacketsLost    uint64 `json:"packets_lost"`
}

// FromCounters encodes a stats.Counters snapshot.
func FromCounters(c stats.Counters) Counters {
	return Counters{
		FlowsStarted:   c.FlowsStarted,
		FlowsCompleted: c.FlowsCompleted,
		FlowsDropped:   c.FlowsDropped,
		FlowsLooped:    c.FlowsLooped,
		FlowsStuck:     c.FlowsStuck,
		PacketIns:      c.PacketIns,
		FlowMods:       c.FlowMods,
		RateChanges:    c.RateChanges,
		EventsRun:      c.EventsRun,
		PathChanges:    c.PathChanges,
		PacketsLost:    c.PacketsLost,
	}
}

// Dist mirrors metrics.Summary: descriptive statistics of a sample (the
// FCT distribution, in a session summary).
type Dist struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	P50    float64 `json:"p50"`
	P90    float64 `json:"p90"`
	P99    float64 `json:"p99"`
}

// FromSummary encodes a metrics.Summary.
func FromSummary(s metrics.Summary) Dist {
	return Dist{N: s.N, Mean: s.Mean, StdDev: s.StdDev, Min: s.Min, Max: s.Max, P50: s.P50, P90: s.P90, P99: s.P99}
}

// Summary is the terminal result of a session: counter totals, the FCT
// distribution of completed flows (seconds), and the number of flow
// records the session produced. For a canceled session it summarizes the
// partial-but-consistent state at the stop instant.
type Summary struct {
	Counters Counters `json:"counters"`
	FCT      *Dist    `json:"fct,omitempty"`
	Records  int      `json:"records"`
}
