// Package wire defines horse-wire, the versioned JSON protocol of the
// horsed simulation service: newline-delimited JSON frames over a byte
// stream (unix socket or TCP), carrying request/response calls plus
// server-push streams of progress events and finalized flow records.
//
// The protocol is explicitly versioned from day one so it can evolve
// without breaking deployed clients. A connection opens with a Hello
// handshake — the client offers the versions it speaks, the server
// answers with the highest mutually supported one — and every later
// frame is interpreted under the negotiated version. Version v1
// ("horse-wire/v1") defines the methods Submit, Status, List, Cancel and
// Retire, the Watch subscription, and the Progress / Record / Done push
// events. Checked-in fixtures under testdata/v1 pin the v1 encoding; the
// decode-compat test replays them so a field rename or type change in
// this package cannot silently break the deployed wire format.
//
// Frames on the wire are one JSON object per line. Three shapes share
// the Frame envelope:
//
//	request:  {"v":"horse-wire/v1","id":7,"method":"Submit","params":{...}}
//	response: {"v":"horse-wire/v1","id":7,"result":{...}}        (or "error")
//	event:    {"v":"horse-wire/v1","event":"Record","session":"s1","data":{...}}
//
// Events carry no id — they are server-initiated pushes bound to a
// session the connection subscribed to (via Watch, or a Submit with
// Stream set).
package wire

import (
	"encoding/json"
	"fmt"
)

// Protocol versions, oldest first. Negotiation picks the highest mutual
// entry of this list; appending a new version here (and handling it in
// the daemon) is the whole upgrade story for a backward-compatible
// change.
const (
	// V1 is the first horse-wire protocol version.
	V1 = "horse-wire/v1"
)

// Versions lists every protocol version this package speaks, oldest
// first.
var Versions = []string{V1}

// Negotiate picks the protocol version for a connection: the highest
// version (in Versions order) present in both offer lists. It returns a
// *VersionError naming both sides' offers when there is no mutual
// version.
func Negotiate(client, server []string) (string, error) {
	rank := make(map[string]int, len(Versions))
	for i, v := range Versions {
		rank[v] = i + 1
	}
	inServer := make(map[string]bool, len(server))
	for _, v := range server {
		inServer[v] = true
	}
	best, bestRank := "", 0
	for _, v := range client {
		if r := rank[v]; r > bestRank && inServer[v] {
			best, bestRank = v, r
		}
	}
	if best == "" {
		return "", &VersionError{Client: client, Server: server}
	}
	return best, nil
}

// VersionError reports a failed version negotiation.
type VersionError struct {
	Client []string
	Server []string
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("wire: no mutual protocol version (client %v, server %v)", e.Client, e.Server)
}

// Methods of the request/response surface.
const (
	// MethodHello opens every connection: HelloParams → Welcome.
	MethodHello = "Hello"
	// MethodSubmit submits a session: SubmitParams → SessionStatus.
	MethodSubmit = "Submit"
	// MethodStatus inspects one session: SessionParams → SessionStatus.
	MethodStatus = "Status"
	// MethodList lists every session: no params → ListResult.
	MethodList = "List"
	// MethodCancel cancels a queued or running session: SessionParams →
	// SessionStatus (the post-cancel state).
	MethodCancel = "Cancel"
	// MethodRetire removes a terminal session: SessionParams → SessionStatus.
	MethodRetire = "Retire"
	// MethodWatch subscribes the connection to a session's push events:
	// SessionParams → SessionStatus (the state at subscription).
	MethodWatch = "Watch"
)

// Server-push event names.
const (
	// EventProgress carries a ProgressEvent.
	EventProgress = "Progress"
	// EventRecord carries one finalized flow Record.
	EventRecord = "Record"
	// EventDone carries a DoneEvent and is the last event of a session's
	// stream on this connection.
	EventDone = "Done"
)

// Frame is the one envelope of the protocol: a request (ID+Method), a
// response (ID+Result|Error), or a push event (Event+Session+Data).
type Frame struct {
	// V is the protocol version (stamped on every frame after the
	// handshake; the Hello request itself carries it too, set to the
	// newest version the client speaks).
	V string `json:"v,omitempty"`
	// ID correlates a response to its request. Events carry none.
	ID uint64 `json:"id,omitempty"`
	// Method is set on requests.
	Method string `json:"method,omitempty"`
	// Params is the request payload.
	Params json.RawMessage `json:"params,omitempty"`
	// Result is the success payload of a response.
	Result json.RawMessage `json:"result,omitempty"`
	// Error is the failure payload of a response.
	Error *Error `json:"error,omitempty"`
	// Event is set on server pushes (EventProgress/EventRecord/EventDone).
	Event string `json:"event,omitempty"`
	// Session is the subject session of an event.
	Session string `json:"session,omitempty"`
	// Data is the event payload.
	Data json.RawMessage `json:"data,omitempty"`
}

// Error codes. Codes are part of the wire contract: clients branch on
// them, so they only ever grow.
const (
	// CodeBadRequest rejects a malformed frame or parameter set.
	CodeBadRequest = "bad-request"
	// CodeBadSpec rejects a session spec that failed validation or
	// engine construction (the message carries the *BuildError detail).
	CodeBadSpec = "bad-spec"
	// CodeVersion rejects a handshake with no mutual protocol version.
	CodeVersion = "version-mismatch"
	// CodeNotFound names an unknown session.
	CodeNotFound = "not-found"
	// CodeQueueFull rejects a submission when the admission queue is at
	// capacity.
	CodeQueueFull = "queue-full"
	// CodeTooLarge rejects a session whose worker cost exceeds the
	// daemon's total budget (it could never be scheduled).
	CodeTooLarge = "too-large"
	// CodeNotRetirable rejects retiring a session that is still queued
	// or running (cancel it first).
	CodeNotRetirable = "not-retirable"
	// CodeDraining rejects submissions while the daemon shuts down.
	CodeDraining = "draining"
	// CodeInternal reports a server-side failure.
	CodeInternal = "internal"
)

// Error is the typed failure payload of a response.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (e *Error) Error() string { return fmt.Sprintf("wire: %s: %s", e.Code, e.Message) }

// HelloParams opens a connection: the versions the client speaks.
type HelloParams struct {
	Versions []string `json:"versions"`
}

// Welcome answers a Hello: the negotiated version and a free-form server
// identity string.
type Welcome struct {
	Version string `json:"version"`
	Server  string `json:"server,omitempty"`
}

// SubmitParams submits one simulation session.
type SubmitParams struct {
	// Name is an optional human label; the server assigns the session ID.
	Name string `json:"name,omitempty"`
	// Spec is the full serialized simulation: topology, workload,
	// scenario, builder options, horizon.
	Spec SessionSpec `json:"spec"`
	// Stream subscribes the submitting connection to the session's push
	// events and streams finalized flow records over the wire instead of
	// retaining them in server memory — the O(1)-memory path for
	// flow-engine sessions. Without Stream, records are retained and
	// replayed by a later Watch.
	Stream bool `json:"stream,omitempty"`
}

// SessionParams names a session (Status/Cancel/Retire/Watch).
type SessionParams struct {
	Session string `json:"session"`
}

// Session states on the wire.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateCanceled = "canceled"
	StateFailed   = "failed"
)

// SessionStatus is the wire view of one session.
type SessionStatus struct {
	Session string `json:"session"`
	Name    string `json:"name,omitempty"`
	State   string `json:"state"`
	// Fidelity echoes the spec's engine granularity.
	Fidelity string `json:"fidelity"`
	// Workers is the session's worker-budget cost while running.
	Workers int `json:"workers"`
	// Stream reports whether records stream to watchers instead of being
	// retained server-side.
	Stream bool `json:"stream,omitempty"`
	// NowNs and Events are the latest progress snapshot (virtual ns,
	// kernel events dispatched).
	NowNs  int64  `json:"now_ns,omitempty"`
	Events uint64 `json:"events,omitempty"`
	// Error carries the failure (or cancellation) detail of a terminal
	// session.
	Error string `json:"error,omitempty"`
	// Summary is set once the session is terminal.
	Summary *Summary `json:"summary,omitempty"`
}

// ListResult is the response of List, in submission order.
type ListResult struct {
	Sessions []SessionStatus `json:"sessions"`
}

// ProgressEvent is the payload of EventProgress.
type ProgressEvent struct {
	NowNs  int64  `json:"now_ns"`
	Events uint64 `json:"events"`
}

// DoneEvent is the payload of EventDone: the terminal state and summary
// of the session (partial but consistent when canceled).
type DoneEvent struct {
	State   string   `json:"state"`
	Error   string   `json:"error,omitempty"`
	Summary *Summary `json:"summary,omitempty"`
}
