module horse

go 1.22
